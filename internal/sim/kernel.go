// Package sim implements a deterministic discrete-event simulation (DES)
// kernel used as the execution substrate for the simulated cluster.
//
// The kernel advances a virtual clock (nanosecond resolution) by firing
// events in (time, sequence) order. Two kinds of activity coexist:
//
//   - Callback events, run inline in the kernel goroutine. These are used
//     for resource bookkeeping (network deliveries, storage completions).
//   - Processes (Proc), long-running coroutines representing MPI ranks or
//     OS service threads. Processes run on their own goroutines but the
//     kernel guarantees that at most one entity (kernel or a single
//     process) executes at any moment, which makes the simulation fully
//     deterministic for a fixed seed.
//
// Determinism is load-bearing: every experiment in this repository is
// reproducible bit-for-bit given its seed, which is how the statistical
// methodology of the reproduced paper (multi-seed series, min-of-series)
// is implemented.
//
// A Kernel and everything attached to it (servers, futures, processes)
// belong to exactly one experiment worker: the parallel sweep runner in
// internal/exp gives every worker its own kernel and never shares one
// across goroutines (enforced statically by collvet's kernelshare
// analyzer).
package sim

import (
	"fmt"
	"math/rand"
)

// Time is virtual time in nanoseconds since the start of the simulation.
type Time int64

// Common durations, in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds converts a virtual duration to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// evKind discriminates the pre-bound callback kinds of an event. The
// dominant schedule sites — process wakeups (timers, future waiters) and
// bandwidth-server completions — outnumber everything else by orders of
// magnitude; giving them dedicated kinds avoids allocating a closure per
// event. Everything else goes through the generic evFunc closure.
type evKind uint8

const (
	evFunc       evKind = iota // run fn (generic closure)
	evDispatch                 // hand the CPU to proc (timer wakeup, future resume)
	evServerDone               // complete srv's in-service request req
)

// event is one scheduled occurrence. Events are stored by value inside
// the kernel's queue slice, so scheduling allocates nothing for the
// event itself; only evFunc events carry a heap-allocated closure.
type event struct {
	at   Time
	seq  int64
	kind evKind
	fn   func()     // evFunc
	proc *Proc      // evDispatch
	srv  *Server    // evServerDone
	req  *serverReq // evServerDone
}

// before orders events by (time, sequence); the sequence is unique per
// kernel, so the order is total and independent of heap shape.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventQueue is a 4-ary min-heap of events stored by value. Compared to
// container/heap's binary heap of *event it avoids both the per-event
// allocation and the interface boxing on every push/pop, and the wider
// fan-out halves the tree depth — fewer cache lines touched per
// operation on the deep queues a 500-rank run builds.
type eventQueue []event

func (q *eventQueue) push(e event) {
	*q = append(*q, e)
	s := *q
	// Sift up: move the hole toward the root until e fits.
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !e.before(&s[p]) {
			break
		}
		s[i] = s[p]
		i = p
	}
	s[i] = e
}

// popMin removes and returns the earliest event. The vacated slot is
// zeroed so the queue never retains closures or process references
// beyond an event's lifetime.
func (q *eventQueue) popMin() event {
	s := *q
	min := s[0]
	n := len(s) - 1
	last := s[n]
	s[n] = event{}
	s = s[:n]
	*q = s
	if n > 0 {
		// Sift down: move the hole from the root until last fits.
		i := 0
		for {
			c := 4*i + 1
			if c >= n {
				break
			}
			end := c + 4
			if end > n {
				end = n
			}
			m := c
			for j := c + 1; j < end; j++ {
				if s[j].before(&s[m]) {
					m = j
				}
			}
			if !s[m].before(&last) {
				break
			}
			s[i] = s[m]
			i = m
		}
		s[i] = last
	}
	return min
}

// Kernel is the discrete-event simulation engine. A Kernel is not safe for
// use from multiple user goroutines; all interaction happens either from
// the goroutine calling Run (via callback events) or from Proc coroutines
// managed by the kernel itself.
type Kernel struct {
	now    Time
	seq    int64
	events eventQueue
	yield  chan struct{} // a running Proc signals here when it blocks/exits
	rng    *rand.Rand
	nprocs int // live process count (debugging / deadlock detection)

	// stopped is set by Stop; Run drains no further events.
	stopped bool
}

// NewKernel returns a kernel whose random source is seeded with seed.
// The same seed always produces the same simulation trajectory.
func NewKernel(seed int64) *Kernel {
	return &Kernel{
		yield:  make(chan struct{}),
		rng:    rand.New(rand.NewSource(seed)),
		events: make(eventQueue, 0, 64),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source. It must only be
// used from kernel or process context.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// push clamps t to now, stamps the next sequence number and enqueues e.
// The clamp runs before the sequence increment so a rejected time can
// never burn a seq (the ordering of the two was previously entangled in
// At).
func (k *Kernel) push(t Time, e event) {
	if t < k.now {
		t = k.now
	}
	k.seq++
	e.at = t
	e.seq = k.seq
	k.events.push(e)
}

// At schedules fn to run at absolute virtual time t (clamped to now).
func (k *Kernel) At(t Time, fn func()) {
	k.push(t, event{kind: evFunc, fn: fn})
}

// After schedules fn to run d nanoseconds from now.
func (k *Kernel) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	k.At(k.now+d, fn)
}

// afterDispatch schedules handing the CPU to p after d, using the
// pre-bound evDispatch kind instead of a `func() { k.dispatch(p) }`
// closure — the single hottest schedule site (every Sleep, Yield and
// future wakeup).
func (k *Kernel) afterDispatch(d Time, p *Proc) {
	if d < 0 {
		d = 0
	}
	k.push(k.now+d, event{kind: evDispatch, proc: p})
}

// afterServerDone schedules completion of srv's in-service request.
func (k *Kernel) afterServerDone(d Time, srv *Server, req *serverReq) {
	if d < 0 {
		d = 0
	}
	k.push(k.now+d, event{kind: evServerDone, srv: srv, req: req})
}

// fire runs one event in kernel context.
func (k *Kernel) fire(e *event) {
	switch e.kind {
	case evFunc:
		e.fn()
	case evDispatch:
		k.dispatch(e.proc)
	case evServerDone:
		e.srv.finish(e.req)
	}
}

// Stop aborts the simulation: Run returns after the current event and
// releases every still-pending event. Stopping is terminal — a stopped
// kernel keeps its final clock but schedules nothing further.
func (k *Kernel) Stop() { k.stopped = true }

// Pending returns the number of scheduled events not yet fired. After a
// stopped Run returns it is zero: the queue has been drained.
func (k *Kernel) Pending() int { return len(k.events) }

// Run fires events in order until the event queue is empty or Stop is
// called. It returns the final virtual time.
func (k *Kernel) Run() Time {
	for !k.stopped && len(k.events) > 0 {
		e := k.events.popMin()
		k.now = e.at
		k.fire(&e)
	}
	if k.stopped {
		k.drain()
	} else if k.nprocs > 0 {
		panic(fmt.Sprintf("sim: deadlock — %d process(es) still blocked with no pending events at t=%v", k.nprocs, k.now))
	}
	return k.now
}

// drain releases every pending event of a stopped kernel: closures and
// process references are dropped and pooled server requests returned to
// their server's free list. Without this a stopped kernel pinned the
// whole remaining event heap — futures, procs and their goroutine stacks
// — for as long as the caller held the kernel.
func (k *Kernel) drain() {
	for i := range k.events {
		e := &k.events[i]
		if e.kind == evServerDone {
			e.srv.release(e.req)
		}
		*e = event{}
	}
	k.events = k.events[:0]
}

// Proc is a simulated sequential process (an MPI rank, an OS helper
// thread). Its body runs on a dedicated goroutine, but the kernel ensures
// at most one process runs at a time, so process code needs no locking
// against other processes.
type Proc struct {
	k    *Kernel
	name string
	wake chan struct{}
	done bool
}

// Spawn creates a process running fn and schedules it to start at the
// current virtual time.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	return k.SpawnAt(0, name, fn)
}

// SpawnAt is Spawn with a start delay.
func (k *Kernel) SpawnAt(d Time, name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, wake: make(chan struct{})}
	k.nprocs++
	go func() {
		<-p.wake // wait for first dispatch
		fn(p)
		p.done = true
		k.nprocs--
		k.yield <- struct{}{} // return control to the kernel
	}()
	k.afterDispatch(d, p)
	return p
}

// dispatch hands the CPU to p and waits until p blocks or exits. It must
// be called from kernel (event-callback) context only.
func (k *Kernel) dispatch(p *Proc) {
	p.wake <- struct{}{}
	<-k.yield
}

// Kernel returns the kernel that owns p.
func (p *Proc) Kernel() *Kernel { return p.k }

// Name returns the process name (for diagnostics).
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// block parks the calling process until another entity calls
// k.dispatch(p) again (via a scheduled event).
func (p *Proc) block() {
	p.k.yield <- struct{}{}
	<-p.wake
}

// Sleep advances the process by d of virtual time (e.g. a compute phase
// or memory-copy cost). A non-positive d still yields so that other
// same-time events interleave fairly.
func (p *Proc) Sleep(d Time) {
	p.k.afterDispatch(d, p)
	p.block()
}

// Yield relinquishes the CPU until all events already scheduled for the
// current instant have run.
func (p *Proc) Yield() { p.Sleep(0) }
