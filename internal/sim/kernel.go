// Package sim implements a deterministic discrete-event simulation (DES)
// kernel used as the execution substrate for the simulated cluster.
//
// The kernel advances a virtual clock (nanosecond resolution) by firing
// events in (time, sequence) order. Two kinds of activity coexist:
//
//   - Callback events, run inline in the kernel goroutine. These are used
//     for resource bookkeeping (network deliveries, storage completions).
//   - Processes (Proc), long-running coroutines representing MPI ranks or
//     OS service threads. Processes run on their own goroutines but the
//     kernel guarantees that at most one entity (kernel or a single
//     process) executes at any moment, which makes the simulation fully
//     deterministic for a fixed seed.
//
// Determinism is load-bearing: every experiment in this repository is
// reproducible bit-for-bit given its seed, which is how the statistical
// methodology of the reproduced paper (multi-seed series, min-of-series)
// is implemented.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is virtual time in nanoseconds since the start of the simulation.
type Time int64

// Common durations, in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds converts a virtual duration to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

type event struct {
	at  Time
	seq int64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel is the discrete-event simulation engine. A Kernel is not safe for
// use from multiple user goroutines; all interaction happens either from
// the goroutine calling Run (via callback events) or from Proc coroutines
// managed by the kernel itself.
type Kernel struct {
	now    Time
	seq    int64
	events eventHeap
	yield  chan struct{} // a running Proc signals here when it blocks/exits
	rng    *rand.Rand
	nprocs int // live process count (debugging / deadlock detection)

	// stopped is set by Stop; Run drains no further events.
	stopped bool
}

// NewKernel returns a kernel whose random source is seeded with seed.
// The same seed always produces the same simulation trajectory.
func NewKernel(seed int64) *Kernel {
	return &Kernel{
		yield: make(chan struct{}),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source. It must only be
// used from kernel or process context.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// At schedules fn to run at absolute virtual time t (clamped to now).
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		t = k.now
	}
	k.seq++
	heap.Push(&k.events, &event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now.
func (k *Kernel) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	k.At(k.now+d, fn)
}

// Stop aborts the simulation: Run returns after the current event.
func (k *Kernel) Stop() { k.stopped = true }

// Run fires events in order until the event queue is empty or Stop is
// called. It returns the final virtual time.
func (k *Kernel) Run() Time {
	for !k.stopped && len(k.events) > 0 {
		e := heap.Pop(&k.events).(*event)
		k.now = e.at
		e.fn()
	}
	if !k.stopped && k.nprocs > 0 {
		panic(fmt.Sprintf("sim: deadlock — %d process(es) still blocked with no pending events at t=%v", k.nprocs, k.now))
	}
	return k.now
}

// Proc is a simulated sequential process (an MPI rank, an OS helper
// thread). Its body runs on a dedicated goroutine, but the kernel ensures
// at most one process runs at a time, so process code needs no locking
// against other processes.
type Proc struct {
	k    *Kernel
	name string
	wake chan struct{}
	done bool
}

// Spawn creates a process running fn and schedules it to start at the
// current virtual time.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, wake: make(chan struct{})}
	k.nprocs++
	go func() {
		<-p.wake // wait for first dispatch
		fn(p)
		p.done = true
		k.nprocs--
		k.yield <- struct{}{} // return control to the kernel
	}()
	k.After(0, func() { k.dispatch(p) })
	return p
}

// SpawnAt is Spawn with a start delay.
func (k *Kernel) SpawnAt(d Time, name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, wake: make(chan struct{})}
	k.nprocs++
	go func() {
		<-p.wake
		fn(p)
		p.done = true
		k.nprocs--
		k.yield <- struct{}{}
	}()
	k.After(d, func() { k.dispatch(p) })
	return p
}

// dispatch hands the CPU to p and waits until p blocks or exits. It must
// be called from kernel (event-callback) context only.
func (k *Kernel) dispatch(p *Proc) {
	p.wake <- struct{}{}
	<-k.yield
}

// Kernel returns the kernel that owns p.
func (p *Proc) Kernel() *Kernel { return p.k }

// Name returns the process name (for diagnostics).
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// block parks the calling process until another entity calls
// k.dispatch(p) again (via a scheduled event).
func (p *Proc) block() {
	p.k.yield <- struct{}{}
	<-p.wake
}

// Sleep advances the process by d of virtual time (e.g. a compute phase
// or memory-copy cost).
func (p *Proc) Sleep(d Time) {
	if d <= 0 {
		// Still yield so that other same-time events interleave fairly.
		d = 0
	}
	k := p.k
	k.After(d, func() { k.dispatch(p) })
	p.block()
}

// Yield relinquishes the CPU until all events already scheduled for the
// current instant have run.
func (p *Proc) Yield() { p.Sleep(0) }
