// Package sim implements a deterministic discrete-event simulation (DES)
// kernel used as the execution substrate for the simulated cluster.
//
// The kernel advances a virtual clock (nanosecond resolution) by firing
// events in (time, sequence) order. Two kinds of activity coexist:
//
//   - Callback events, run inline in the kernel goroutine. These are used
//     for resource bookkeeping (network deliveries, storage completions).
//   - Processes (Proc), long-running coroutines representing MPI ranks or
//     OS service threads. Processes run on their own goroutines but the
//     kernel guarantees that at most one entity (kernel or a single
//     process) executes at any moment, which makes the simulation fully
//     deterministic for a fixed seed.
//
// Determinism is load-bearing: every experiment in this repository is
// reproducible bit-for-bit given its seed, which is how the statistical
// methodology of the reproduced paper (multi-seed series, min-of-series)
// is implemented.
//
// A Kernel and everything attached to it (servers, futures, processes)
// belong to exactly one experiment worker: the parallel sweep runner in
// internal/exp gives every worker its own kernel and never shares one
// across goroutines (enforced statically by collvet's kernelshare
// analyzer).
package sim

import (
	"fmt"
	"math/rand"
)

// Time is virtual time in nanoseconds since the start of the simulation.
type Time int64

// Common durations, in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds converts a virtual duration to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// evKind discriminates the pre-bound callback kinds of an event. The
// dominant schedule sites — process wakeups (timers, future waiters) and
// bandwidth-server completions — outnumber everything else by orders of
// magnitude; giving them dedicated kinds avoids allocating a closure per
// event. Everything else goes through the generic evFunc closure.
type evKind uint8

const (
	evFunc       evKind = iota // run fn (generic closure)
	evDispatch                 // hand the CPU to proc (timer wakeup, future resume)
	evServerDone               // complete srv's in-service request req
)

// event is one scheduled occurrence. Events are stored by value inside
// the kernel's queue slice, so scheduling allocates nothing for the
// event itself; only evFunc events carry a heap-allocated closure.
type event struct {
	at      Time
	schedAt Time // virtual time at which the event was scheduled
	seq     int64
	crec    *evRecord // execution record of the creating event (partitioned runs only)
	kind    evKind
	fn      func()     // evFunc
	proc    *Proc      // evDispatch
	srv     *Server    // evServerDone
	req     *serverReq // evServerDone
}

// evRecord is the execution record of one fired event in a partitioned
// run. Events created while the record's event executes point at it via
// event.crec, and ord stands in for the creator's position in the
// global sequential order:
//
//   - While the event's window is still open, ord is the kernel's local
//     execution index. Two records are only ever compared in this state
//     when both creators executed in the current window, which (because
//     cross-LP events always land in a later window) forces both onto
//     the same LP — where local execution order IS sequential order.
//   - At the window barrier the partition merges all executed records
//     into the global sequential order and rewrites ord with the global
//     sequence number, after which the record is comparable across LPs.
//
// Mixed comparisons (one ord local, one global) cannot reach the ord
// field: they imply one creator executed in the current window and one
// in an earlier window, so the events' schedAt values differ and decide
// first. Records for scheduling done before Run (process spawns, model
// construction) carry negative ords in construction order, below every
// execution ord — matching the sequential rule that setup-created
// events precede all execution-created events at equal key prefix.
type evRecord struct {
	at      Time
	schedAt Time
	seq     int64
	crec    *evRecord
	ord     int64
}

// before orders events by (time, schedule-time, creator order,
// sequence).
//
// On a single sequential kernel crec is always nil and this is exactly
// the historical (time, sequence) order: the clock is non-decreasing
// while events are scheduled, so the sequence number is monotone in
// schedAt and the extra fields never reorder anything. The refinement
// matters only under partitioned execution, where events scheduled by
// different LPs meet in one queue: same-instant events created at the
// same instant are ordered by their creators' global execution order
// (evRecord.ord), then by the creating kernel's sequence counter —
// which is precisely the sequential kernel's creation order. That is
// what makes the parallel run's event interleaving — and hence every
// trace/probe digest — bit-identical to the sequential run.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	if e.schedAt != o.schedAt {
		return e.schedAt < o.schedAt
	}
	if e.crec != o.crec {
		if a, b := e.crec.ord, o.crec.ord; a != b {
			return a < b
		}
	}
	return e.seq < o.seq
}

// eventQueue is a 4-ary min-heap of events stored by value. Compared to
// container/heap's binary heap of *event it avoids both the per-event
// allocation and the interface boxing on every push/pop, and the wider
// fan-out halves the tree depth — fewer cache lines touched per
// operation on the deep queues a 500-rank run builds.
type eventQueue []event

func (q *eventQueue) push(e event) {
	*q = append(*q, e)
	s := *q
	// Sift up: move the hole toward the root until e fits.
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !e.before(&s[p]) {
			break
		}
		s[i] = s[p]
		i = p
	}
	s[i] = e
}

// popMin removes and returns the earliest event. The vacated slot is
// zeroed so the queue never retains closures or process references
// beyond an event's lifetime.
func (q *eventQueue) popMin() event {
	s := *q
	min := s[0]
	n := len(s) - 1
	last := s[n]
	s[n] = event{}
	s = s[:n]
	*q = s
	if n > 0 {
		// Sift down: move the hole from the root until last fits.
		i := 0
		for {
			c := 4*i + 1
			if c >= n {
				break
			}
			end := c + 4
			if end > n {
				end = n
			}
			m := c
			for j := c + 1; j < end; j++ {
				if s[j].before(&s[m]) {
					m = j
				}
			}
			if !s[m].before(&last) {
				break
			}
			s[i] = s[m]
			i = m
		}
		s[i] = last
	}
	return min
}

// Kernel is the discrete-event simulation engine. A Kernel is not safe for
// use from multiple user goroutines; all interaction happens either from
// the goroutine calling Run (via callback events) or from Proc coroutines
// managed by the kernel itself.
type Kernel struct {
	now    Time
	seq    int64
	events eventQueue
	yield  chan struct{} // a running Proc signals here when it blocks/exits
	rng    *rand.Rand
	nprocs int // live process count (debugging / deadlock detection)

	// stopped is set by Stop; Run drains no further events.
	stopped bool

	// ObserveDepth, if non-nil, is called by the sequential Run loop
	// after each fired event with the current virtual time and the
	// remaining event-queue depth. Observation only (host-side appends;
	// no scheduling, no randomness). The partitioned executor does not
	// call it — per-LP queue depth describes the execution engine, not
	// the modelled system, and has no sequential counterpart.
	ObserveDepth func(at Time, depth int)

	// lp and part identify this kernel as one logical process of a
	// partitioned run (see parallel.go). Both stay zero/nil for an
	// ordinary sequential kernel.
	lp   int32
	part *Partition

	// curRec is the execution record of the event being fired,
	// maintained by runWindow: events scheduled during the firing are
	// stamped with it (push), and shard buffers (trace, probe) tag
	// entries with it via EventStamp. Sequential Run skips the
	// bookkeeping: nothing folds a single kernel's buffers.
	curRec *evRecord
	// execIdx counts fired events, giving records their provisional
	// within-window local order; emitSeq counts EventStamp emissions so
	// same-event trace/probe entries keep their emission order through
	// the merge.
	execIdx int64
	emitSeq int64
	// windowRecs lists the records of events fired in the current
	// window, in execution order — one sorted stream of the barrier
	// merge that assigns global sequence numbers (Partition.assignGseq).
	windowRecs []*evRecord
	// recSlab batch-allocates evRecords so the per-event record costs an
	// allocation only every len(slab) events.
	recSlab []evRecord
}

// NewKernel returns a kernel whose random source is seeded with seed.
// The same seed always produces the same simulation trajectory.
func NewKernel(seed int64) *Kernel {
	return &Kernel{
		yield:  make(chan struct{}),
		rng:    rand.New(rand.NewSource(seed)),
		events: make(eventQueue, 0, 64),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source. It must only be
// used from kernel or process context.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// push clamps t to now, stamps the next sequence number and enqueues e.
// The clamp runs before the sequence increment so a rejected time can
// never burn a seq (the ordering of the two was previously entangled in
// At).
func (k *Kernel) push(t Time, e event) {
	if t < k.now {
		t = k.now
	}
	k.seq++
	e.at = t
	e.schedAt = k.now
	e.seq = k.seq
	if k.part != nil {
		e.crec = k.creator()
	}
	k.events.push(e)
}

// creator returns the record the event being scheduled should carry: the
// record of the currently firing event, or — during model construction,
// before Run — a fresh setup record whose ord precedes every execution
// ord.
func (k *Kernel) creator() *evRecord {
	if k.curRec != nil {
		return k.curRec
	}
	return k.part.setupStamp()
}

// newRecord slab-allocates the execution record for one fired event.
func (k *Kernel) newRecord() *evRecord {
	if len(k.recSlab) == 0 {
		k.recSlab = make([]evRecord, 512)
	}
	rec := &k.recSlab[0]
	k.recSlab = k.recSlab[1:]
	return rec
}

// At schedules fn to run at absolute virtual time t (clamped to now).
func (k *Kernel) At(t Time, fn func()) {
	k.push(t, event{kind: evFunc, fn: fn})
}

// After schedules fn to run d nanoseconds from now.
func (k *Kernel) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	k.At(k.now+d, fn)
}

// afterDispatch schedules handing the CPU to p after d, using the
// pre-bound evDispatch kind instead of a `func() { k.dispatch(p) }`
// closure — the single hottest schedule site (every Sleep, Yield and
// future wakeup).
func (k *Kernel) afterDispatch(d Time, p *Proc) {
	if d < 0 {
		d = 0
	}
	k.push(k.now+d, event{kind: evDispatch, proc: p})
}

// afterServerDone schedules completion of srv's in-service request.
func (k *Kernel) afterServerDone(d Time, srv *Server, req *serverReq) {
	if d < 0 {
		d = 0
	}
	k.push(k.now+d, event{kind: evServerDone, srv: srv, req: req})
}

// fire runs one event in kernel context.
func (k *Kernel) fire(e *event) {
	switch e.kind {
	case evFunc:
		e.fn()
	case evDispatch:
		k.dispatch(e.proc)
	case evServerDone:
		e.srv.finish(e.req)
	}
}

// Stop aborts the simulation: Run returns after the current event and
// releases every still-pending event. Stopping is terminal — a stopped
// kernel keeps its final clock but schedules nothing further.
func (k *Kernel) Stop() { k.stopped = true }

// Pending returns the number of scheduled events not yet fired. After a
// stopped Run returns it is zero: the queue has been drained.
func (k *Kernel) Pending() int { return len(k.events) }

// Run fires events in order until the event queue is empty or Stop is
// called. It returns the final virtual time.
func (k *Kernel) Run() Time {
	for !k.stopped && len(k.events) > 0 {
		e := k.events.popMin()
		k.now = e.at
		k.fire(&e)
		if k.ObserveDepth != nil {
			k.ObserveDepth(k.now, len(k.events))
		}
	}
	if k.stopped {
		k.drain()
	} else if k.nprocs > 0 {
		panic(fmt.Sprintf("sim: deadlock — %d process(es) still blocked with no pending events at t=%v", k.nprocs, k.now))
	}
	return k.now
}

// drain releases every pending event of a stopped kernel: closures and
// process references are dropped and pooled server requests returned to
// their server's free list. Without this a stopped kernel pinned the
// whole remaining event heap — futures, procs and their goroutine stacks
// — for as long as the caller held the kernel.
func (k *Kernel) drain() {
	for i := range k.events {
		e := &k.events[i]
		if e.kind == evServerDone {
			e.srv.release(e.req)
		}
		*e = event{}
	}
	k.events = k.events[:0]
}

// peek returns the timestamp of the earliest pending event.
func (k *Kernel) peek() (Time, bool) {
	if k.stopped || len(k.events) == 0 {
		return 0, false
	}
	return k.events[0].at, true
}

// runWindow fires events in key order until the queue is empty or the
// earliest event lies at or beyond horizon. It is the per-LP inner loop
// of the partitioned executor: the Partition guarantees that no other
// LP can schedule an event for this kernel before horizon, so the
// window is safe to run without synchronisation. Every fired event gets
// an execution record (provisionally ordered by the local execution
// index) that the barrier merge promotes to the global sequential
// order; events and shard-buffer entries created during the firing are
// stamped with it.
func (k *Kernel) runWindow(horizon Time) {
	for !k.stopped && len(k.events) > 0 && k.events[0].at < horizon {
		e := k.events.popMin()
		k.now = e.at
		rec := k.newRecord()
		rec.at = e.at
		rec.schedAt = e.schedAt
		rec.seq = e.seq
		rec.crec = e.crec
		k.execIdx++
		rec.ord = k.execIdx
		k.curRec = rec
		k.windowRecs = append(k.windowRecs, rec)
		k.fire(&e)
	}
}

// LP returns this kernel's logical-process ID within a Partition, or 0
// for a sequential kernel.
func (k *Kernel) LP() int { return int(k.lp) }

// Partition returns the partition this kernel belongs to, or nil for a
// sequential kernel.
func (k *Kernel) Partition() *Partition { return k.part }

// Stamp marks one emission point (a trace span, a probe event) inside a
// partitioned run with the firing event's execution record and a
// per-kernel emission counter. After the run completes — when every
// record's ord holds its global sequence number — stamps from all LP
// shards compare into exactly the sequential emission order.
type Stamp struct {
	rec  *evRecord
	emit int64
}

// Before reports whether s's emission precedes t's in the reconstructed
// sequential order. Only valid once the partitioned run has finished
// (all ords are then global).
func (s Stamp) Before(t Stamp) bool {
	if s.rec != t.rec {
		return s.rec.ord < t.rec.ord
	}
	return s.emit < t.emit
}

// EventStamp returns a fresh emission stamp tied to the event currently
// being fired. Only meaningful inside a partitioned run (runWindow
// maintains the record).
func (k *Kernel) EventStamp() Stamp {
	k.emitSeq++
	return Stamp{rec: k.curRec, emit: k.emitSeq}
}

// ScheduleRemote schedules fn to run at absolute virtual time t on the
// kernel of logical process dst. On a sequential kernel (or when dst is
// the caller's own LP) this is just At. Across LPs the event is
// buffered in the partition's mailbox and enters dst's queue at the
// next window barrier, carrying the sender's full ordering key so the
// merged order is identical to a sequential run. t must respect the
// partition's lookahead: scheduling below the current window horizon is
// a causality violation and panics.
func (k *Kernel) ScheduleRemote(dst int, t Time, fn func()) {
	p := k.part
	if p == nil || int32(dst) == k.lp {
		k.At(t, fn)
		return
	}
	if t < k.now {
		t = k.now
	}
	if t < p.horizon {
		panic(fmt.Sprintf("sim: lookahead violation — LP %d scheduled an event on LP %d at t=%v inside window horizon %v", k.lp, dst, t, p.horizon))
	}
	k.seq++
	p.mail[k.lp] = append(p.mail[k.lp], remoteEvent{
		dst: int32(dst), at: t, schedAt: k.now, seq: k.seq, crec: k.creator(), fn: fn,
	})
}

// Proc is a simulated sequential process (an MPI rank, an OS helper
// thread). Its body runs on a dedicated goroutine, but the kernel ensures
// at most one process runs at a time, so process code needs no locking
// against other processes.
type Proc struct {
	k    *Kernel
	name string
	wake chan struct{}
	done bool
}

// Spawn creates a process running fn and schedules it to start at the
// current virtual time.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	return k.SpawnAt(0, name, fn)
}

// SpawnAt is Spawn with a start delay.
func (k *Kernel) SpawnAt(d Time, name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, wake: make(chan struct{})}
	k.nprocs++
	go func() {
		<-p.wake // wait for first dispatch
		fn(p)
		p.done = true
		k.nprocs--
		k.yield <- struct{}{} // return control to the kernel
	}()
	k.afterDispatch(d, p)
	return p
}

// dispatch hands the CPU to p and waits until p blocks or exits. It must
// be called from kernel (event-callback) context only.
func (k *Kernel) dispatch(p *Proc) {
	p.wake <- struct{}{}
	<-k.yield
}

// Kernel returns the kernel that owns p.
func (p *Proc) Kernel() *Kernel { return p.k }

// Name returns the process name (for diagnostics).
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// block parks the calling process until another entity calls
// k.dispatch(p) again (via a scheduled event).
func (p *Proc) block() {
	p.k.yield <- struct{}{}
	<-p.wake
}

// Sleep advances the process by d of virtual time (e.g. a compute phase
// or memory-copy cost). A non-positive d still yields so that other
// same-time events interleave fairly.
func (p *Proc) Sleep(d Time) {
	p.k.afterDispatch(d, p)
	p.block()
}

// Yield relinquishes the CPU until all events already scheduled for the
// current instant have run.
func (p *Proc) Yield() { p.Sleep(0) }
