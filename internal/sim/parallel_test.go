package sim

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

// The tests below drive the same two-LP model through the sequential
// kernel and through a Partition, logging every observable action
// under its canonical event key, and require the folded parallel log
// to be bit-identical to the sequential one — the same property the
// exp-level equivalence matrix checks end-to-end, isolated to the
// executor.

const testLookahead = 100 * Nanosecond

// logEntry is one observable action tagged with its emission stamp.
type logEntry struct {
	at    Time
	stamp Stamp
	label string
}

type logShard struct{ entries []logEntry }

func (s *logShard) add(k *Kernel, label string) {
	s.entries = append(s.entries, logEntry{k.Now(), k.EventStamp(), label})
}

// foldLogs merges per-LP shards in emission-stamp order (valid only
// after the partitioned run has finished).
func foldLogs(shards []*logShard) []string {
	var all []logEntry
	for _, s := range shards {
		all = append(all, s.entries...)
	}
	sort.Slice(all, func(i, j int) bool {
		return all[i].stamp.Before(all[j].stamp)
	})
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = fmt.Sprintf("%d %s", e.at, e.label)
	}
	return out
}

// buildPingPong wires nlp logical processes that bounce messages
// between neighbours through ScheduleRemote with delay >= lookahead,
// each LP also running a local bandwidth server and a sleeping proc so
// all three event kinds (evFunc, evDispatch, evServerDone) interleave
// inside windows. kernelFor maps an LP to its kernel: in the
// sequential reference every LP maps to the same kernel.
func buildPingPong(kernelFor func(lp int) *Kernel, shards []*logShard, nlp, rounds int) {
	for lp := 0; lp < nlp; lp++ {
		lp := lp
		k := kernelFor(lp)
		sh := shards[lp]
		srv := k.NewServer(fmt.Sprintf("srv%d", lp), 1e9, 10*Nanosecond)
		var bounce func(round int)
		bounce = func(round int) {
			sh.add(k, fmt.Sprintf("lp%d recv r%d", lp, round))
			srv.Submit(int64(64 * (round + 1))).OnDone(func() {
				sh.add(k, fmt.Sprintf("lp%d served r%d", lp, round))
			})
			if round < rounds {
				dst := (lp + 1) % nlp
				k.ScheduleRemote(dst, k.Now()+testLookahead+Time(lp), func() {
					dk := kernelFor(dst)
					shards[dst].add(dk, fmt.Sprintf("lp%d ball from lp%d r%d", dst, lp, round+1))
					bounceOn(kernelFor, shards, dst, round+1, rounds)
				})
			}
		}
		k.At(Time(lp), func() { bounce(0) })
		k.Spawn(fmt.Sprintf("walker%d", lp), func(p *Proc) {
			for i := 0; i < rounds; i++ {
				p.Sleep(testLookahead / 3)
				sh.add(k, fmt.Sprintf("lp%d walk %d", lp, i))
			}
		})
	}
}

// bounceOn continues a ball on dst's kernel: receive, serve locally,
// and pass it along while rounds remain.
func bounceOn(kernelFor func(lp int) *Kernel, shards []*logShard, lp, round, rounds int) {
	k := kernelFor(lp)
	srv := k.NewServer("hop", 2e9, 5*Nanosecond)
	srv.Submit(128).OnDone(func() {
		shards[lp].add(k, fmt.Sprintf("lp%d hop-served r%d", lp, round))
	})
	if round < rounds {
		dst := (lp + 1) % len(shards)
		k.ScheduleRemote(dst, k.Now()+testLookahead, func() {
			dk := kernelFor(dst)
			shards[dst].add(dk, fmt.Sprintf("lp%d ball from lp%d r%d", dst, lp, round+1))
			bounceOn(kernelFor, shards, dst, round+1, rounds)
		})
	}
}

func runSequentialPingPong(nlp, rounds int) []string {
	k := NewKernel(42)
	shards := make([]*logShard, nlp)
	for i := range shards {
		shards[i] = &logShard{}
	}
	// Sequential reference: one kernel plays every LP. ScheduleRemote
	// degrades to At, and the log keeps plain append order — the oracle
	// the folded parallel log must reproduce. (Stamps are not
	// maintained by Run, so the fold order here is just append order.)
	seqLog := &logShard{}
	all := func(int) *Kernel { return k }
	seqShards := make([]*logShard, nlp)
	for i := range seqShards {
		seqShards[i] = seqLog
	}
	buildPingPong(all, seqShards, nlp, rounds)
	k.Run()
	out := make([]string, len(seqLog.entries))
	for i, e := range seqLog.entries {
		out[i] = fmt.Sprintf("%d %s", e.at, e.label)
	}
	return out
}

func runPartitionedPingPong(nlp, rounds, workers int) []string {
	p := NewPartition(42, nlp, testLookahead)
	shards := make([]*logShard, nlp)
	for i := range shards {
		shards[i] = &logShard{}
	}
	buildPingPong(p.Kernel, shards, nlp, rounds)
	p.Run(workers)
	return foldLogs(shards)
}

func TestPartitionMatchesSequential(t *testing.T) {
	for _, nlp := range []int{2, 3, 5} {
		for _, workers := range []int{1, 2, 4} {
			want := runSequentialPingPong(nlp, 40)
			got := runPartitionedPingPong(nlp, 40, workers)
			if len(want) == 0 {
				t.Fatalf("empty sequential log")
			}
			if strings.Join(got, "\n") != strings.Join(want, "\n") {
				for i := range want {
					if i >= len(got) || got[i] != want[i] {
						t.Fatalf("nlp=%d workers=%d: log diverges at %d:\n  seq: %s\n  par: %s",
							nlp, workers, i, want[i], at(got, i))
					}
				}
				t.Fatalf("nlp=%d workers=%d: parallel log longer than sequential (%d vs %d)", nlp, workers, len(got), len(want))
			}
		}
	}
}

func at(s []string, i int) string {
	if i < len(s) {
		return s[i]
	}
	return "(missing)"
}

func TestPartitionLookaheadViolationPanics(t *testing.T) {
	p := NewPartition(1, 2, testLookahead)
	k := p.Kernel(0)
	k.At(0, func() {
		// Scheduling on another LP below the window horizon must panic:
		// the destination may already be past this timestamp.
		k.ScheduleRemote(1, k.Now(), func() {})
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected lookahead-violation panic")
		}
		if !strings.Contains(fmt.Sprint(r), "lookahead violation") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	p.Run(1)
}

func TestPartitionDeadlockPanics(t *testing.T) {
	p := NewPartition(1, 2, testLookahead)
	p.Kernel(0).Spawn("stuck", func(pr *Proc) {
		pr.Wait(pr.Kernel().NewFuture()) // never completed
	})
	p.Kernel(1).At(10, func() {})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected deadlock panic")
		}
		if !strings.Contains(fmt.Sprint(r), "deadlock") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	p.Run(2)
}

func TestPartitionStopDrains(t *testing.T) {
	p := NewPartition(1, 2, testLookahead)
	k0 := p.Kernel(0)
	k0.At(0, func() {
		k0.ScheduleRemote(1, testLookahead*2, func() { t := 0; _ = t })
		p.Stop()
	})
	p.Kernel(1).At(testLookahead*5, func() {})
	p.Run(2)
	for i := 0; i < p.NKernels(); i++ {
		if n := p.Kernel(i).Pending(); n != 0 {
			t.Fatalf("LP %d still has %d pending events after Stop", i, n)
		}
	}
}

// BenchmarkPartitionPingPong measures raw window-protocol overhead:
// many small windows with one cross-LP hop each — the worst case for
// barrier cost relative to useful work.
func BenchmarkPartitionPingPong(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				runPartitionedPingPong(4, 200, workers)
			}
		})
	}
}
