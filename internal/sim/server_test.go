package sim

import (
	"testing"
	"testing/quick"
)

func TestServerSingleRequest(t *testing.T) {
	k := NewKernel(1)
	// 1000 bytes/s, 10ns per op.
	s := k.NewServer("disk", 1000, 10)
	f := s.Submit(500) // 0.5s + 10ns
	k.Run()
	want := Time(float64(500)/1000*float64(Second)) + 10
	if f.DoneAt() != want {
		t.Fatalf("done at %v, want %v", f.DoneAt(), want)
	}
}

func TestServerFIFOQueueing(t *testing.T) {
	k := NewKernel(1)
	s := k.NewServer("nic", float64(Second), 0) // 1 byte per ns
	f1 := s.Submit(100)
	f2 := s.Submit(50)
	k.Run()
	if f1.DoneAt() != 100 {
		t.Fatalf("first done at %v, want 100", f1.DoneAt())
	}
	if f2.DoneAt() != 150 {
		t.Fatalf("second done at %v, want 150 (queued behind first)", f2.DoneAt())
	}
}

func TestServerIdleGapResets(t *testing.T) {
	k := NewKernel(1)
	s := k.NewServer("nic", float64(Second), 0)
	var done Time
	k.At(0, func() { s.Submit(10) })
	k.At(1000, func() {
		f := s.Submit(10)
		f.OnDone(func() { done = k.Now() })
	})
	k.Run()
	if done != 1010 {
		t.Fatalf("post-idle request done at %v, want 1010", done)
	}
}

func TestServerZeroBandwidthIsInfinite(t *testing.T) {
	k := NewKernel(1)
	s := k.NewServer("inf", 0, 7)
	f := s.Submit(1 << 40)
	k.Run()
	if f.DoneAt() != 7 {
		t.Fatalf("done at %v, want 7 (PerOp only)", f.DoneAt())
	}
}

func TestServerNoise(t *testing.T) {
	k := NewKernel(1)
	s := k.NewServer("noisy", float64(Second), 0)
	s.Noise = func() float64 { return 2.0 }
	f := s.Submit(100)
	k.Run()
	if f.DoneAt() != 200 {
		t.Fatalf("noisy request done at %v, want 200", f.DoneAt())
	}
}

func TestServerNegativeNoiseClamped(t *testing.T) {
	k := NewKernel(1)
	s := k.NewServer("noisy", float64(Second), 0)
	s.Noise = func() float64 { return -3 }
	f := s.Submit(100)
	k.Run()
	if f.DoneAt() != 0 {
		t.Fatalf("done at %v, want 0 (noise clamped to 0)", f.DoneAt())
	}
}

func TestServerSubmitAfter(t *testing.T) {
	k := NewKernel(1)
	s := k.NewServer("t", float64(Second), 0)
	f := s.SubmitAfter(40, 10)
	k.Run()
	if f.DoneAt() != 50 {
		t.Fatalf("done at %v, want 50", f.DoneAt())
	}
}

func TestServerStats(t *testing.T) {
	k := NewKernel(1)
	s := k.NewServer("t", float64(Second), 5)
	s.Submit(10)
	s.Submit(20)
	k.Run()
	ops, bytes, busy := s.Stats()
	if ops != 2 || bytes != 30 {
		t.Fatalf("ops=%d bytes=%d, want 2/30", ops, bytes)
	}
	if busy != 40 { // (10+5)+(20+5)
		t.Fatalf("busy=%v, want 40", busy)
	}
}

// Property: for any request sequence, completion times are non-decreasing
// in submission order (FIFO) and total busy time equals the sum of
// individual service times.
func TestServerFIFOProperty(t *testing.T) {
	prop := func(sizes []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 64 {
			sizes = sizes[:64]
		}
		k := NewKernel(3)
		s := k.NewServer("p", float64(Second), 3)
		futs := make([]*Future, len(sizes))
		for i, sz := range sizes {
			futs[i] = s.Submit(int64(sz))
		}
		k.Run()
		var prev Time = -1
		var sum Time
		for i, f := range futs {
			if !f.Done() || f.DoneAt() < prev {
				return false
			}
			prev = f.DoneAt()
			sum += s.serviceTime(int64(sizes[i]))
		}
		_, _, busy := s.Stats()
		return busy == sum
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
