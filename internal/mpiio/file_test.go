package mpiio

import (
	"bytes"
	"testing"

	"collio/internal/datatype"
	"collio/internal/fcoll"
	"collio/internal/mpi"
	"collio/internal/sim"
	"collio/internal/simfs"
	"collio/internal/simnet"
)

func testStack(t *testing.T, nprocs int) (*sim.Kernel, *mpi.World, *File) {
	t.Helper()
	k := sim.NewKernel(1)
	net := simnet.New(k, simnet.Config{
		Nodes:          nprocs,
		InterBandwidth: 3e9,
		InterLatency:   2 * sim.Microsecond,
		IntraBandwidth: 6e9,
		IntraLatency:   300 * sim.Nanosecond,
		MemBandwidth:   8e9,
	})
	w, err := mpi.NewWorld(k, net, mpi.DefaultConfig(nprocs, 1))
	if err != nil {
		t.Fatal(err)
	}
	fs, err := simfs.New(k, net, simfs.Config{
		StripeSize:      64 << 10,
		NumTargets:      4,
		TargetBandwidth: 500e6,
		TargetPerOp:     20 * sim.Microsecond,
		NetLatency:      5 * sim.Microsecond,
		ClientPerOp:     5 * sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return k, w, Open(w, fs.Open("f"))
}

func TestWriteSyncLeavesMPI(t *testing.T) {
	// During a synchronous write the rank must be outside the MPI
	// library (no protocol progress) and back inside afterwards.
	k, w, f := testStack(t, 1)
	var during, after bool
	w.Launch(func(r *mpi.Rank) {
		r.EnterMPI()
		// Sample the progress state from a kernel event scheduled to
		// fire mid-write.
		k.After(sim.Millisecond/2, func() { during = r.InMPI() })
		f.WriteSync(r, 0, 8<<20, nil) // several ms at 500 MB/s
		after = r.InMPI()
		r.ExitMPI()
	})
	k.Run()
	if during {
		t.Fatal("rank was inside MPI during a blocking write")
	}
	if !after {
		t.Fatal("rank did not re-enter MPI after the write")
	}
}

func TestWriteSyncAccountsIOTime(t *testing.T) {
	k, w, f := testStack(t, 1)
	w.Launch(func(r *mpi.Rank) {
		r.EnterMPI()
		f.WriteSync(r, 0, 1<<20, nil)
		r.ExitMPI()
		if r.IOTime <= 0 {
			t.Error("IOTime not accounted")
		}
	})
	k.Run()
}

func TestWriteAsyncReturnsImmediately(t *testing.T) {
	k, w, f := testStack(t, 1)
	w.Launch(func(r *mpi.Rank) {
		start := r.Now()
		fut := f.WriteAsync(r, 0, 8<<20, nil)
		if r.Now() != start {
			t.Error("WriteAsync advanced the caller's clock")
		}
		r.EnterMPI()
		r.WaitFutures(fut)
		r.ExitMPI()
		if r.Now() == start {
			t.Error("write completed in zero time")
		}
	})
	k.Run()
}

func TestWriteAllDataIntegrity(t *testing.T) {
	const np = 4
	k, w, f := testStack(t, np)
	ranks := make([]fcoll.RankView, np)
	for i := range ranks {
		b := make([]byte, 100<<10)
		for j := range b {
			b[j] = byte(i*31 + j%127)
		}
		ranks[i] = fcoll.RankView{
			Extents: []datatype.Extent{{Off: int64(i) * 100 << 10, Len: 100 << 10}},
			Data:    b,
		}
	}
	jv, err := fcoll.NewJobView(ranks)
	if err != nil {
		t.Fatal(err)
	}
	f.SetCollectiveOptions(fcoll.Options{Algorithm: fcoll.WriteOverlap, BufferSize: 128 << 10})
	w.Launch(func(r *mpi.Rank) {
		if _, err := f.WriteAll(r, jv); err != nil {
			t.Errorf("rank %d: %v", r.ID(), err)
		}
	})
	k.Run()
	if !bytes.Equal(f.Raw().ReadBack(0, int64(np)*100<<10), jv.ExpectedFile()) {
		t.Fatal("collective write corrupted data")
	}
}

func TestTagBasesAdvancePerCollective(t *testing.T) {
	const np = 2
	k, w, f := testStack(t, np)
	jv, err := fcoll.NewJobView([]fcoll.RankView{
		{Extents: []datatype.Extent{{Off: 0, Len: 4 << 10}}},
		{Extents: []datatype.Extent{{Off: 4 << 10, Len: 4 << 10}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	w.Launch(func(r *mpi.Rank) {
		for i := 0; i < 3; i++ {
			if _, err := f.WriteAll(r, jv); err != nil {
				t.Errorf("%v", err)
			}
		}
		if r.ID() == 0 {
			count = 3
		}
	})
	k.Run()
	if count != 3 {
		t.Fatal("collectives did not complete")
	}
	if writes, _ := f.Raw().Stats(); writes == 0 {
		t.Fatal("no writes reached the file system")
	}
}

func TestCollectiveOptionsRoundTrip(t *testing.T) {
	_, _, f := testStack(t, 1)
	opts := fcoll.Options{Algorithm: fcoll.CommOverlap, BufferSize: 1 << 20, Aggregators: 2}
	f.SetCollectiveOptions(opts)
	got := f.CollectiveOptions()
	if got.Algorithm != fcoll.CommOverlap || got.BufferSize != 1<<20 || got.Aggregators != 2 {
		t.Fatalf("options round trip: %+v", got)
	}
}
