// Package mpiio is the MPI-IO layer of the simulated stack: it binds a
// rank set to a simulated parallel file, implements independent
// synchronous and asynchronous writes with the correct progress
// semantics, and dispatches collective writes into the fcoll two-phase
// engine — the role OMPIO plays inside Open MPI.
package mpiio

import (
	"collio/internal/fcoll"
	"collio/internal/mpi"
	"collio/internal/sim"
	"collio/internal/simfs"
)

// File is a shared file opened by every rank of a world
// (MPI_File_open on MPI_COMM_WORLD).
type File struct {
	w    *mpi.World
	f    *simfs.File
	seqs []int // per-rank collective sequence numbers, space message tags
	opts fcoll.Options
}

// Open binds a world to a simulated file with default collective
// options.
func Open(w *mpi.World, f *simfs.File) *File {
	return &File{w: w, f: f, seqs: make([]int, w.Size()), opts: fcoll.DefaultOptions()}
}

// SetCollectiveOptions configures the two-phase engine used by
// WriteAll (algorithm, primitive, buffer size, aggregators).
func (f *File) SetCollectiveOptions(opts fcoll.Options) { f.opts = opts }

// CollectiveOptions returns the current collective configuration.
func (f *File) CollectiveOptions() fcoll.Options { return f.opts }

// Raw returns the underlying simulated file (verification).
func (f *File) Raw() *simfs.File { return f.f }

// WriteSync performs an independent blocking write. The rank leaves the
// MPI library for the duration (POSIX pwrite under the hood): no
// communication progress happens on its behalf — the property that
// penalises Comm-Overlap in the paper.
func (f *File) WriteSync(r *mpi.Rank, off, size int64, data []byte) {
	t0 := r.Now()
	r.ExitMPI()
	f.f.Write(r.Proc(), r.Node(), off, size, data)
	r.EnterMPI()
	r.IOTime += r.Now() - t0
}

// WriteAsync starts an independent non-blocking write
// (MPI_File_iwrite / aio_write): the transfer is progressed by the OS,
// independent of the rank's activity, and the returned future completes
// when data is persisted.
func (f *File) WriteAsync(r *mpi.Rank, off, size int64, data []byte) *sim.Future {
	return f.f.AIOWrite(r.Node(), off, size, data)
}

// WriteAll performs a collective write of the job view through the
// two-phase engine. All ranks must call it with the same view. It
// returns this rank's accounting.
func (f *File) WriteAll(r *mpi.Rank, jv *fcoll.JobView) (fcoll.Result, error) {
	opts := f.opts
	f.seqs[r.ID()]++
	// Ranks call collectives in lockstep, so per-rank counters agree;
	// shifting spaces the tags of successive collectives apart.
	opts.TagBase = f.seqs[r.ID()] << 20
	res, err := f.Run(r, jv, opts)
	return res, err
}

// Run executes one collective write with explicit options (WriteAll with
// per-call configuration).
func (f *File) Run(r *mpi.Rank, jv *fcoll.JobView, opts fcoll.Options) (fcoll.Result, error) {
	res, err := fcoll.Run(r, jv, f, opts)
	if err == nil {
		r.IOTime += res.WriteTime
	}
	return res, err
}

var _ fcoll.Writer = (*File)(nil)

// ReadSync performs an independent blocking read (POSIX pread): the
// rank leaves the MPI library for the duration.
func (f *File) ReadSync(r *mpi.Rank, off, size int64, buf []byte) {
	t0 := r.Now()
	r.ExitMPI()
	f.f.Read(r.Proc(), r.Node(), off, size, buf)
	r.EnterMPI()
	r.IOTime += r.Now() - t0
}

// ReadAsync starts an independent non-blocking read (aio_read), OS-
// progressed.
func (f *File) ReadAsync(r *mpi.Rank, off, size int64, buf []byte) *sim.Future {
	return f.f.AIORead(r.Node(), off, size, buf)
}

// ReadAll performs a collective read of the job view through the
// two-phase read engine (see fcoll.RunRead). In data mode each rank's
// view buffer is filled with its bytes.
func (f *File) ReadAll(r *mpi.Rank, jv *fcoll.JobView) (fcoll.Result, error) {
	opts := f.opts
	f.seqs[r.ID()]++
	opts.TagBase = f.seqs[r.ID()] << 20
	res, err := fcoll.RunRead(r, jv, f, opts)
	if err == nil {
		r.IOTime += res.WriteTime
	}
	return res, err
}

var _ fcoll.Reader = (*File)(nil)
