// Command flashio runs the FLASH-IO checkpoint pattern (block-
// structured AMR, one collective write per checkpointed variable)
// through the simulated collective-write stack.
//
// Example:
//
//	flashio -platform ibex -np 96 -blocks 20 -vars 6 -all
package main

import (
	"flag"
	"fmt"

	"collio/internal/cli"
	"collio/internal/workload/flashio"
)

func main() {
	var c cli.Common
	c.RegisterFlags()
	blocks := flag.Int("blocks", 20, "mean mesh blocks per process (FLASH: ~80-100)")
	jitter := flag.Int("jitter", 4, "AMR load-imbalance range (± blocks)")
	vars := flag.Int("vars", 6, "checkpointed variables (FLASH: 24)")
	nxb := flag.Int64("nxb", 8, "cells per block per dimension")
	flag.Parse()

	cfg := flashio.Config{
		NXB: *nxb, NYB: *nxb, NZB: *nxb,
		BytesPerCell:  8,
		BlocksPerProc: *blocks,
		BlockJitter:   *jitter,
		NumVars:       *vars,
	}
	if cfg.BlocksPerProc <= 0 || cfg.NumVars <= 0 || cfg.NXB <= 0 {
		cli.Fatal("flashio", fmt.Errorf("blocks, vars and nxb must be positive"))
	}
	fmt.Printf("checkpoint: %d variables, %d±%d blocks/proc of %dx%dx%d doubles\n",
		cfg.NumVars, cfg.BlocksPerProc, cfg.BlockJitter, cfg.NXB, cfg.NYB, cfg.NZB)
	if err := c.RunBenchmark(cfg); err != nil {
		cli.Fatal("flashio", err)
	}
}
