// Command collvet runs the collio static-analysis suite: six
// simulator-invariant analyzers that catch, at compile time, the
// protocol bugs that would silently corrupt the reproduction's overlap
// measurements (leaked requests, wall-clock time in the deterministic
// kernel, unpaired RMA epochs, blocking calls in kernel callbacks,
// payload aliasing, and kernel-owned state shared across goroutines).
//
// Usage:
//
//	go run ./cmd/collvet [-json] [-run name,name] [-list] [packages]
//
// With no package patterns, ./... is analyzed. Exit status is 0 when
// the tree is clean, 1 when diagnostics were reported, 2 on load or
// internal errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"collio/internal/analyzer"
)

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	runList := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	dir := flag.String("C", "", "change to this directory before loading packages")
	flag.Parse()

	// A real chdir, not just a go-list working directory: the source
	// importer resolves module-internal imports relative to the process
	// cwd, so both must move together.
	if *dir != "" {
		if err := os.Chdir(*dir); err != nil {
			fmt.Fprintf(os.Stderr, "collvet: %v\n", err)
			return 2
		}
	}

	if *list {
		for _, a := range analyzer.All() {
			fmt.Printf("%-20s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := analyzer.All()
	if *runList != "" {
		analyzers = nil
		for _, name := range strings.Split(*runList, ",") {
			name = strings.TrimSpace(name)
			a := analyzer.ByName(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "collvet: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	pkgs, err := analyzer.Load("", flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "collvet: %v\n", err)
		return 2
	}
	diags, err := analyzer.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "collvet: %v\n", err)
		return 2
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analyzer.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "collvet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
