// Command collvet runs the collio static-analysis suite: eleven
// simulator-invariant analyzers that catch, at compile time, the
// protocol bugs that would silently corrupt the reproduction's overlap
// measurements — six per-node syntactic matchers (leaked requests,
// wall-clock time in the deterministic kernel, unpaired RMA epochs,
// blocking calls in kernel callbacks, payload aliasing, kernel-owned
// state shared across goroutines), four flow-sensitive analyzers
// over the shared CFG/dataflow core (map-iteration-ordered emission,
// pooled-handle lifetimes, sim.Time unit confusion, lookahead
// violations), and a type-shape check (memosafe) that keeps
// //collvet:memoized cache-result types free of live simulator
// handles and other non-plain data.
//
// Usage:
//
//	go run ./cmd/collvet [flags] [packages]
//
//	-only name,name   run only the named analyzers (alias: -run)
//	-skip name,name   run all but the named analyzers
//	-json             emit diagnostics as a JSON array
//	-time             print per-analyzer wall time to stderr
//	-cache dir        result-cache directory ("off" disables;
//	                  default: the user cache dir)
//	-list             list analyzers and exit
//	-C dir            change to dir before loading packages
//
// With no package patterns, ./... is analyzed. Findings can be waived
// one at a time with an audited `//collvet:ignore <analyzer> --
// <reason>` comment on the diagnostic's line or the line above; a
// waiver without a reason is itself a finding. Per-package results are
// cached keyed by a hash of the package's sources, its transitive
// dependencies and the analyzer selection, so a clean re-run on an
// unchanged tree skips type-checking entirely.
//
// Exit status is 0 when the tree is clean, 1 when diagnostics were
// reported (a per-analyzer summary line on stderr explains the
// failure), 2 on load or internal errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"collio/internal/analyzer"
)

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	runList := flag.String("run", "", "alias of -only, kept for compatibility")
	skip := flag.String("skip", "", "comma-separated analyzer names to skip")
	timing := flag.Bool("time", false, "print per-analyzer wall time to stderr")
	cacheDir := flag.String("cache", "", `result-cache directory, or "off" (default: user cache dir)`)
	list := flag.Bool("list", false, "list analyzers and exit")
	dir := flag.String("C", "", "change to this directory before loading packages")
	flag.Parse()

	// A real chdir, not just a go-list working directory: the source
	// importer resolves module-internal imports relative to the process
	// cwd, so both must move together.
	if *dir != "" {
		if err := os.Chdir(*dir); err != nil {
			fmt.Fprintf(os.Stderr, "collvet: %v\n", err)
			return 2
		}
	}

	if *list {
		for _, a := range analyzer.All() {
			fmt.Printf("%-20s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := selectAnalyzers(*only, *runList, *skip)
	if err != nil {
		fmt.Fprintf(os.Stderr, "collvet: %v\n", err)
		return 2
	}

	cache, err := openCache(*cacheDir)
	if err != nil {
		// The cache is an accelerator: fall back to uncached analysis.
		fmt.Fprintf(os.Stderr, "collvet: cache disabled: %v\n", err)
		cache = nil
	}

	diags, stats, err := analyzer.RunCached("", flag.Args(), analyzers, cache)
	if err != nil {
		fmt.Fprintf(os.Stderr, "collvet: %v\n", err)
		return 2
	}

	if *timing {
		printTimings(analyzers, stats)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analyzer.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "collvet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		// Make the non-zero exit self-explanatory: which analyzers
		// fired, how often, and whether anything was waived.
		fmt.Fprintf(os.Stderr, "collvet: %s\n", summarize(diags, stats))
		return 1
	}
	return 0
}

// selectAnalyzers resolves -only/-run/-skip into the analyzer list.
func selectAnalyzers(only, runAlias, skip string) ([]*analyzer.Analyzer, error) {
	if only != "" && runAlias != "" {
		return nil, fmt.Errorf("-only and -run are aliases; give only one")
	}
	if only == "" {
		only = runAlias
	}
	analyzers := analyzer.All()
	if only != "" {
		analyzers = nil
		for _, name := range splitNames(only) {
			a := analyzer.ByName(name)
			if a == nil {
				return nil, fmt.Errorf("unknown analyzer %q (use -list)", name)
			}
			analyzers = append(analyzers, a)
		}
	}
	if skip != "" {
		skipped := map[string]bool{}
		for _, name := range splitNames(skip) {
			if analyzer.ByName(name) == nil {
				return nil, fmt.Errorf("unknown analyzer %q (use -list)", name)
			}
			skipped[name] = true
		}
		var kept []*analyzer.Analyzer
		for _, a := range analyzers {
			if !skipped[a.Name] {
				kept = append(kept, a)
			}
		}
		analyzers = kept
	}
	if len(analyzers) == 0 {
		return nil, fmt.Errorf("analyzer selection is empty")
	}
	return analyzers, nil
}

func splitNames(s string) []string {
	var names []string
	for _, name := range strings.Split(s, ",") {
		if name = strings.TrimSpace(name); name != "" {
			names = append(names, name)
		}
	}
	return names
}

// openCache resolves the -cache flag: "off" disables, "" uses the
// per-user default.
func openCache(dir string) (*analyzer.Cache, error) {
	if dir == "off" {
		return nil, nil
	}
	if dir == "" {
		var err error
		dir, err = analyzer.DefaultCacheDir()
		if err != nil {
			return nil, err
		}
	}
	return analyzer.OpenCache(dir)
}

func printTimings(analyzers []*analyzer.Analyzer, stats analyzer.RunStats) {
	var parts []string
	for _, a := range analyzers {
		parts = append(parts, fmt.Sprintf("%s=%s", a.Name, stats.Elapsed[a.Name].Round(10*time.Microsecond)))
	}
	fmt.Fprintf(os.Stderr, "collvet: timings: %s (packages: %d analyzed, %d cached)\n",
		strings.Join(parts, " "), stats.CacheMisses, stats.CacheHits)
}

// summarize renders the non-zero-exit explanation line.
func summarize(diags []analyzer.Diagnostic, stats analyzer.RunStats) string {
	perAnalyzer := map[string]int{}
	for _, d := range diags {
		perAnalyzer[d.Analyzer]++
	}
	names := make([]string, 0, len(perAnalyzer))
	for name := range perAnalyzer {
		names = append(names, name)
	}
	sort.Strings(names)
	var parts []string
	for _, name := range names {
		parts = append(parts, fmt.Sprintf("%s=%d", name, perAnalyzer[name]))
	}
	s := fmt.Sprintf("%d finding(s): %s", len(diags), strings.Join(parts, " "))
	if stats.Suppressed > 0 {
		s += fmt.Sprintf(" (%d suppressed by //collvet:ignore)", stats.Suppressed)
	}
	return s
}
