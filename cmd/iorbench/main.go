// Command iorbench runs the IOR benchmark pattern (1-D contiguous
// blocks, transfer size = block size, one segment — the configuration
// of the reproduced paper's §IV) through the simulated collective-write
// stack and reports per-algorithm timing and bandwidth.
//
// Example:
//
//	iorbench -platform ibex -np 128 -block 16 -all
package main

import (
	"flag"
	"fmt"

	"collio/internal/cli"
	"collio/internal/workload/ior"
)

func main() {
	var c cli.Common
	c.RegisterFlags()
	blockMB := flag.Int("block", 16, "block size per rank in MiB (paper: 1024)")
	segments := flag.Int("segments", 1, "segment count (paper: 1)")
	flag.Parse()

	cfg := ior.Config{BlockSize: int64(*blockMB) << 20, Segments: *segments}
	if cfg.BlockSize <= 0 || cfg.Segments <= 0 {
		cli.Fatal("iorbench", fmt.Errorf("block and segments must be positive"))
	}
	if err := c.RunBenchmark(cfg); err != nil {
		cli.Fatal("iorbench", err)
	}
}
