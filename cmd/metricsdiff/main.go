// Command metricsdiff A/B-compares two metrics snapshots written by
// -metrics-out (Prometheus text format, the .prom file):
//
//	metricsdiff old.prom new.prom
//
// It prints one row per sample — per-OST busy time and peak depth,
// per-link utilisation, phase occupancy, histogram counts and sums —
// with old value, new value, absolute delta and relative change, sorted
// by sample key so the output is deterministic and diffable. Samples
// present in only one snapshot are marked added/removed.
//
// With -changed, rows whose value is identical in both snapshots are
// suppressed. With -fail-changed, any surviving row makes the command
// exit non-zero — a regression gate for "these two runs must have
// identical telemetry".
package main

import (
	"flag"
	"fmt"
	"os"

	"collio/internal/metrics/export"
)

func main() {
	changed := flag.Bool("changed", false, "print only samples whose value differs")
	failChanged := flag.Bool("fail-changed", false, "exit non-zero when any sample differs")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: metricsdiff [flags] old.prom new.prom\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	old, err := loadSnapshot(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	new, err := loadSnapshot(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	rows := export.Diff(old, new)
	if err := export.WriteDiff(os.Stdout, rows, *changed); err != nil {
		fatal(err)
	}
	if *failChanged {
		for _, r := range rows {
			if !r.InOld || !r.InNew || r.Old != r.New {
				fmt.Fprintf(os.Stderr, "metricsdiff: snapshots differ\n")
				os.Exit(1)
			}
		}
	}
}

func loadSnapshot(path string) (export.Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	snap, err := export.ParseProm(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return snap, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "metricsdiff: %v\n", err)
	os.Exit(1)
}
