// Command benchjson converts `go test -bench` text output on stdin
// into indented JSON on stdout, so the Makefile's bench target can
// persist a machine-readable perf trajectory (BENCH_*.json) per PR:
//
//	go test -run '^$' -bench . -benchmem ./... | go run ./cmd/benchjson > BENCH_PR4.json
//
// With -diff FILE the run is also compared against a prior BENCH_*.json
// baseline: per-benchmark metric deltas go to stderr (stdout stays pure
// JSON for redirection). Benchmarks appearing in only one of the two
// runs are skipped.
//
// With -fail-above PCT the comparison becomes a regression gate (the
// Makefile's bench-diff target): any ns/op delta worse than +PCT% makes
// the command exit non-zero after listing the offenders. -gate REGEX
// narrows the gate to matching benchmark names — wall-clock noise on
// sub-millisecond micro-benchmarks would otherwise dominate, so CI
// gates only the long-running end-to-end ones.
//
// -fail-allocs-above PCT gates allocs/op the same way, under a separate
// (much tighter) threshold: allocation counts are deterministic, so
// unlike wall-clock they can be held to a few percent without noise
// retries — and because they carry no noise, the allocs gate can cover
// benchmarks far too short to gate on wall-clock. -allocs-gate REGEX
// scopes it independently (default: the -gate regex); both gates
// report independently.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"

	"collio/internal/benchfmt"
)

func main() {
	diffFile := flag.String("diff", "", "compare against a prior BENCH_*.json `file`; print deltas to stderr")
	failAbove := flag.Float64("fail-above", 0, "exit non-zero when any gated ns/op delta exceeds +`pct` percent (0 disables)")
	failAllocs := flag.Float64("fail-allocs-above", 0, "exit non-zero when any gated allocs/op delta exceeds +`pct` percent (0 disables)")
	gate := flag.String("gate", "", "restrict -fail-above to benchmarks matching `regex` (default: all)")
	allocsGate := flag.String("allocs-gate", "", "restrict -fail-allocs-above to benchmarks matching `regex` (default: the -gate regex)")
	flag.Parse()

	run, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(run.Results) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin"))
	}
	var deltas []benchfmt.Delta
	if *diffFile != "" {
		if deltas, err = printDiff(*diffFile, run); err != nil {
			fatal(err)
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(run); err != nil {
		fatal(err)
	}
	if *failAbove > 0 || *failAllocs > 0 {
		if *diffFile == "" {
			fatal(fmt.Errorf("-fail-above/-fail-allocs-above require -diff"))
		}
		var gateErr error
		if *failAbove > 0 {
			gateErr = checkGate(deltas, "ns/op", *failAbove, *gate)
		}
		if *failAllocs > 0 {
			ag := *allocsGate
			if ag == "" {
				ag = *gate
			}
			if err := checkGate(deltas, "allocs/op", *failAllocs, ag); gateErr == nil {
				gateErr = err
			}
		}
		if gateErr != nil {
			fatal(gateErr)
		}
	}
}

// printDiff loads the baseline run from path, writes the metric deltas
// of the current run to stderr, and returns them for gating.
func printDiff(path string, run *benchfmt.Run) ([]benchfmt.Delta, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base benchfmt.Run
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("baseline %s: %v", path, err)
	}
	deltas := benchfmt.Diff(&base, run)
	if len(deltas) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmarks shared with baseline %s\n", path)
		return nil, nil
	}
	fmt.Fprintf(os.Stderr, "\ndeltas vs %s:\n", path)
	return deltas, benchfmt.WriteDeltas(os.Stderr, deltas)
}

// checkGate fails when any gated benchmark's metric with the given unit
// regressed beyond +pct percent relative to the baseline.
func checkGate(deltas []benchfmt.Delta, unit string, pct float64, gate string) error {
	var re *regexp.Regexp
	if gate != "" {
		var err error
		if re, err = regexp.Compile(gate); err != nil {
			return fmt.Errorf("bad -gate regexp: %v", err)
		}
	}
	var bad []benchfmt.Delta
	gated := 0
	for _, d := range deltas {
		if d.Unit != unit || (re != nil && !re.MatchString(d.Name)) {
			continue
		}
		gated++
		if d.Old != 0 && d.Pct > pct {
			bad = append(bad, d)
		}
	}
	if gated == 0 {
		return fmt.Errorf("gate matched no %s deltas (gate %q)", unit, gate)
	}
	if len(bad) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: gate ok — %d benchmark(s) within +%g%% %s\n", gated, pct, unit)
		return nil
	}
	fmt.Fprintf(os.Stderr, "\nbenchjson: %s regressions beyond +%g%%:\n", unit, pct)
	benchfmt.WriteDeltas(os.Stderr, bad)
	return fmt.Errorf("%d benchmark(s) regressed beyond +%g%% %s", len(bad), pct, unit)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}
