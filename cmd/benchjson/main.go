// Command benchjson converts `go test -bench` text output on stdin
// into indented JSON on stdout, so the Makefile's bench target can
// persist a machine-readable perf trajectory (BENCH_*.json) per PR:
//
//	go test -run '^$' -bench . -benchmem ./... | go run ./cmd/benchjson > BENCH_PR2.json
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"collio/internal/benchfmt"
)

func main() {
	run, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(run.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(run); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
