// Command benchjson converts `go test -bench` text output on stdin
// into indented JSON on stdout, so the Makefile's bench target can
// persist a machine-readable perf trajectory (BENCH_*.json) per PR:
//
//	go test -run '^$' -bench . -benchmem ./... | go run ./cmd/benchjson > BENCH_PR3.json
//
// With -diff FILE the run is also compared against a prior BENCH_*.json
// baseline: per-benchmark metric deltas go to stderr (stdout stays pure
// JSON for redirection). Benchmarks appearing in only one of the two
// runs are skipped.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"collio/internal/benchfmt"
)

func main() {
	diffFile := flag.String("diff", "", "compare against a prior BENCH_*.json `file`; print deltas to stderr")
	flag.Parse()

	run, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(run.Results) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin"))
	}
	if *diffFile != "" {
		if err := printDiff(*diffFile, run); err != nil {
			fatal(err)
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(run); err != nil {
		fatal(err)
	}
}

// printDiff loads the baseline run from path and writes the metric
// deltas of the current run to stderr.
func printDiff(path string, run *benchfmt.Run) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base benchfmt.Run
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %v", path, err)
	}
	deltas := benchfmt.Diff(&base, run)
	if len(deltas) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmarks shared with baseline %s\n", path)
		return nil
	}
	fmt.Fprintf(os.Stderr, "\ndeltas vs %s:\n", path)
	return benchfmt.WriteDeltas(os.Stderr, deltas)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}
