// Command benchjson converts `go test -bench` text output on stdin
// into indented JSON on stdout, so the Makefile's bench target can
// persist a machine-readable perf trajectory (BENCH_*.json) per PR:
//
//	go test -run '^$' -bench . -benchmem ./... | go run ./cmd/benchjson > BENCH_PR4.json
//
// With -diff FILE the run is also compared against a prior BENCH_*.json
// baseline: per-benchmark metric deltas go to stderr (stdout stays pure
// JSON for redirection). Benchmarks appearing in only one of the two
// runs are skipped.
//
// With -fail-above PCT the comparison becomes a regression gate (the
// Makefile's bench-diff target): any ns/op delta worse than +PCT% makes
// the command exit non-zero after listing the offenders. -gate REGEX
// narrows the gate to matching benchmark names — wall-clock noise on
// sub-millisecond micro-benchmarks would otherwise dominate, so CI
// gates only the long-running end-to-end ones.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"

	"collio/internal/benchfmt"
)

func main() {
	diffFile := flag.String("diff", "", "compare against a prior BENCH_*.json `file`; print deltas to stderr")
	failAbove := flag.Float64("fail-above", 0, "exit non-zero when any gated ns/op delta exceeds +`pct` percent (0 disables)")
	gate := flag.String("gate", "", "restrict -fail-above to benchmarks matching `regex` (default: all)")
	flag.Parse()

	run, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(run.Results) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin"))
	}
	var deltas []benchfmt.Delta
	if *diffFile != "" {
		if deltas, err = printDiff(*diffFile, run); err != nil {
			fatal(err)
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(run); err != nil {
		fatal(err)
	}
	if *failAbove > 0 {
		if *diffFile == "" {
			fatal(fmt.Errorf("-fail-above requires -diff"))
		}
		if err := checkGate(deltas, *failAbove, *gate); err != nil {
			fatal(err)
		}
	}
}

// printDiff loads the baseline run from path, writes the metric deltas
// of the current run to stderr, and returns them for gating.
func printDiff(path string, run *benchfmt.Run) ([]benchfmt.Delta, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base benchfmt.Run
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("baseline %s: %v", path, err)
	}
	deltas := benchfmt.Diff(&base, run)
	if len(deltas) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmarks shared with baseline %s\n", path)
		return nil, nil
	}
	fmt.Fprintf(os.Stderr, "\ndeltas vs %s:\n", path)
	return deltas, benchfmt.WriteDeltas(os.Stderr, deltas)
}

// checkGate fails when any gated benchmark's ns/op regressed beyond
// +pct percent relative to the baseline.
func checkGate(deltas []benchfmt.Delta, pct float64, gate string) error {
	var re *regexp.Regexp
	if gate != "" {
		var err error
		if re, err = regexp.Compile(gate); err != nil {
			return fmt.Errorf("bad -gate regexp: %v", err)
		}
	}
	var bad []benchfmt.Delta
	gated := 0
	for _, d := range deltas {
		if d.Unit != "ns/op" || (re != nil && !re.MatchString(d.Name)) {
			continue
		}
		gated++
		if d.Old != 0 && d.Pct > pct {
			bad = append(bad, d)
		}
	}
	if gated == 0 {
		return fmt.Errorf("gate matched no ns/op deltas (gate %q)", gate)
	}
	if len(bad) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: gate ok — %d benchmark(s) within +%g%% ns/op\n", gated, pct)
		return nil
	}
	fmt.Fprintf(os.Stderr, "\nbenchjson: ns/op regressions beyond +%g%%:\n", pct)
	benchfmt.WriteDeltas(os.Stderr, bad)
	return fmt.Errorf("%d benchmark(s) regressed beyond +%g%% ns/op", len(bad), pct)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
	os.Exit(1)
}
