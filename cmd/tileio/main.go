// Command tileio runs the MPI-TILE-IO benchmark pattern (dense 2-D
// dataset, one tile per process) through the simulated collective-write
// stack. The two paper configurations are selectable with -config 256
// (small fragmented elements) or -config 1M (large contiguous runs);
// custom geometries are available through -elem/-ex/-ey.
//
// Example:
//
//	tileio -platform crill -np 144 -config 1M -all
package main

import (
	"flag"
	"fmt"

	"collio/internal/cli"
	"collio/internal/workload/tileio"
)

func main() {
	var c cli.Common
	c.RegisterFlags()
	config := flag.String("config", "1M", "paper configuration: 256|1M (overridden by -elem/-ex/-ey)")
	elem := flag.Int64("elem", 0, "element size in bytes (custom geometry)")
	ex := flag.Int64("ex", 0, "elements per tile in x (custom geometry)")
	ey := flag.Int64("ey", 0, "elements per tile in y (custom geometry)")
	flag.Parse()

	var cfg tileio.Config
	switch *config {
	case "256":
		cfg = tileio.Tile256()
	case "1M":
		cfg = tileio.Tile1M()
	default:
		cli.Fatal("tileio", fmt.Errorf("unknown -config %q (want 256 or 1M)", *config))
	}
	if *elem > 0 {
		cfg.ElemSize = *elem
		cfg.Label = "tileio-custom"
	}
	if *ex > 0 {
		cfg.ElemsX = *ex
	}
	if *ey > 0 {
		cfg.ElemsY = *ey
	}
	nx, ny := tileio.Grid(c.NProcs)
	fmt.Printf("tile grid : %d x %d tiles of %d x %d elements (%d B each)\n",
		nx, ny, cfg.ElemsX, cfg.ElemsY, cfg.ElemSize)
	if err := c.RunBenchmark(cfg); err != nil {
		cli.Fatal("tileio", err)
	}
}
