// Command evalsuite regenerates every table and figure of the
// reproduced paper's evaluation section (Feki & Gabriel, IPPS 2020) on
// the simulated crill and Ibex platforms:
//
//	table1    — Table I: best-overlap-algorithm win counts per benchmark
//	fig1      — Fig. 1: Tile I/O 1M execution times at two process counts
//	fig2      — Fig. 2: average positive improvement per algorithm, crill
//	fig3      — Fig. 3: average positive improvement per algorithm, Ibex
//	fig4      — Fig. 4: transfer-primitive win counts (+ §IV-B np trend)
//	breakdown — §IV-A: shuffle vs file-access time split, no-overlap code
//	all       — everything above
//	probe     — one instrumented Tile I/O 1M run (see -probe/-trace-json/-report)
//	scale     — multi-thousand-rank IOR sweep on ibex (see -ranks; not in "all")
//	select    — E12: auto-tuner vs fixed-algorithm policies (see -cache-file; not in "all")
//	hier      — E13: flat vs hierarchical two-level collective write (see -np; not in "all")
//
// -serve starts a long-lived auto-tuner query service on stdin instead
// of running an experiment: `select <platform> <workload> <np>` answers
// from the digest-keyed memo cache (cold queries sweep the design
// space, warm ones are O(lookup)), `stats` prints cache counters,
// `quit` — or SIGINT, which drains the in-flight sweep — flushes the
// -cache-file store and exits.
//
// Use -full for the extended sweep (larger process counts; slow) and
// -np to override Fig. 1 / breakdown process counts. The scale sweep
// takes its rank counts from -ranks (default 1024,2048,4096); -jrun N
// runs each of its simulations on the conservative parallel executor
// with N window workers (deterministic ibex model — simulated times are
// identical at every N, host wall-clock scales with cores). The
// observability flags -probe, -trace-json, -report, -metrics and
// -metrics-out attach instrumentation to a single run (implying the
// probe experiment); -progress prints a live heartbeat for any sweep.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"collio/internal/cli"
	"collio/internal/exp"
	"collio/internal/fcoll"
	"collio/internal/metrics"
	mexport "collio/internal/metrics/export"
	"collio/internal/platform"
	"collio/internal/probe"
	"collio/internal/probe/export"
	"collio/internal/simnet"
	"collio/internal/stats"
	"collio/internal/tune"
	"collio/internal/workload/tileio"
)

func main() {
	var (
		which     = flag.String("exp", "all", "experiment: table1|fig1|fig2|fig3|fig4|breakdown|probe|scale|select|hier|all")
		full      = flag.Bool("full", false, "run the extended sweep (slow)")
		verbose   = flag.Bool("v", false, "print per-series progress")
		npFlag    = flag.String("np", "", "comma-separated process counts for fig1/breakdown (default 64,128; -full 256,576)")
		ranksFlag = flag.String("ranks", "", "comma-separated rank counts for the scale sweep (default 1024,2048,4096)")
		runs      = flag.Int("runs", 3, "measurements per series")
		jobs      = flag.Int("j", exp.DefaultParallelism(), "max simulations run in parallel (results are identical at any -j)")
		jrun      = flag.Int("jrun", 0, "window workers inside each scale-sweep simulation (>= 1 switches to the deterministic ibex model; 0 keeps the noisy E8 sweep)")
		bundleF   = flag.Bool("bundle", false, "run the scale sweep on the bundled cohort executor (deterministic ibex scaled to the rank count; enables 100k-1M rank points, E11)")
		netmodelF = flag.String("netmodel", "chunked", "simnet transfer model for bundled scale points: chunked|flow")
		probeF    = flag.Bool("probe", false, "print the probe counter registry of the instrumented run")
		traceJSON = flag.String("trace-json", "", "write a Chrome/Perfetto trace of the instrumented run to `file`")
		report    = flag.Bool("report", false, "print a Darshan-style I/O report of the instrumented run")
		metricsF  = flag.Bool("metrics", false, "attach time-series telemetry to the instrumented run and print a per-series summary")
		metricsO  = flag.String("metrics-out", "", "write the instrumented run's telemetry to `base`.prom, base.csv and base.html")
		progressF = flag.Bool("progress", false, "print a live runs-completed/ETA heartbeat to stderr")
		serveF    = flag.Bool("serve", false, "run the long-lived auto-tuner query service on stdin (select/stats/quit; SIGINT drains and flushes)")
		cacheFile = flag.String("cache-file", "", "persist the auto-tuner memo cache as a JSON-lines store at `file` (select experiment and -serve)")
	)
	var prof cli.Profiler
	prof.RegisterFlags()
	flag.Parse()
	// Reject unknown experiment names up front. The historical check sat
	// at the bottom of main behind `if !ran` — but the observability
	// flags force the probe run, so `-exp tabel1 -probe` used to run the
	// wrong thing silently instead of failing.
	if err := validateExp(*which); err != nil {
		fatalf("%v", err)
	}
	netModel, ok := simnet.ParseNetModel(*netmodelF)
	if !ok {
		fatalf("unknown -netmodel %q (want chunked|flow)", *netmodelF)
	}
	if err := prof.Start(); err != nil {
		fatalf("profiling: %v", err)
	}

	if *progressF {
		pr := metrics.NewProgress("runs", os.Stderr)
		exp.SetProgress(pr)
		pr.Start()
		defer func() {
			pr.Stop()
			exp.SetProgress(nil)
		}()
	}

	// The tuner's grid and execution strategy, shared by -exp select and
	// -serve: -full widens the sweep to the one-sided primitives, -j /
	// -jrun / -bundle apply exactly as they do to the scale sweep.
	tuneOpts := tune.Options{
		Parallel:  *jobs,
		JRun:      *jrun,
		Bundle:    *bundleF,
		CachePath: *cacheFile,
	}
	if *full {
		tuneOpts.Space = tune.FullSpace()
	}

	if *serveF {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		defer signal.Stop(sig)
		if err := runServe(os.Stdin, os.Stdout, sig, tuneOpts); err != nil {
			fatalf("serve: %v", err)
		}
		if err := prof.Stop(); err != nil {
			fatalf("profiling: %v", err)
		}
		return
	}

	obs := *probeF || *traceJSON != "" || *report || *metricsF || *metricsO != ""
	if obs {
		// Asking for observability output without naming an experiment
		// means "just the instrumented run", not the whole suite.
		expSet := false
		flag.Visit(func(f *flag.Flag) { expSet = expSet || f.Name == "exp" })
		if !expSet {
			*which = "probe"
		}
	}

	sweep := exp.QuickSweep()
	fig1NP := []int{64, 128}
	if *full {
		sweep = exp.FullSweep()
		fig1NP = []int{256, 576}
	}
	sweep.Runs = *runs
	sweep.Parallel = *jobs
	if *verbose {
		sweep.Progress = os.Stderr
	}
	if *npFlag != "" {
		fig1NP = nil
		for _, s := range strings.Split(*npFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n <= 0 {
				fatalf("bad -np value %q", s)
			}
			fig1NP = append(fig1NP, n)
		}
	}

	// The scale sweep and the tuner experiment are opt-in only: minutes
	// of wall-clock that "all" (the laptop-scale paper reproduction)
	// should not pull in.
	want := func(name string) bool {
		if name == "scale" || name == "select" || name == "hier" {
			return *which == name
		}
		return *which == "all" || *which == name
	}
	ran := false

	if want("select") {
		ran = true
		if err := runSelectExperiment(os.Stdout, fig1NP, tuneOpts); err != nil {
			fatalf("select: %v", err)
		}
	}

	if want("hier") {
		ran = true
		// E13's canonical cells are the paper's 576-rank points plus the
		// 4096-rank tier; -np overrides both.
		hierNP := []int{576, 4096}
		if *npFlag != "" {
			hierNP = fig1NP
		}
		if err := runHierExperiment(os.Stdout, hierNP, *jobs, progress(*verbose)); err != nil {
			fatalf("hier: %v", err)
		}
	}

	if want("scale") {
		ran = true
		cfg := exp.DefaultScaleConfig()
		cfg.JRun = *jrun
		cfg.Bundle = *bundleF
		cfg.NetModel = netModel
		if *ranksFlag != "" {
			cfg.RankCounts = nil
			for _, s := range strings.Split(*ranksFlag, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(s))
				if err != nil || n <= 0 {
					fatalf("bad -ranks value %q", s)
				}
				cfg.RankCounts = append(cfg.RankCounts, n)
			}
		}
		if *verbose {
			cfg.Progress = os.Stderr
		}
		pts, err := exp.RunScaleSweep(cfg)
		if err != nil {
			fatalf("scale sweep: %v", err)
		}
		head := []string{"np", "Algorithm", "Simulated", "File volume", "Host wall-clock", "Peak RSS"}
		var rows [][]string
		for _, p := range pts {
			rows = append(rows, []string{
				strconv.Itoa(p.NProcs), p.Algorithm, p.Elapsed.String(),
				fmt.Sprintf("%.0f MiB", float64(p.Bytes)/(1<<20)),
				p.Wall.Round(time.Millisecond).String(),
				fmt.Sprintf("%d MiB", p.PeakRSS>>20),
			})
		}
		title := "SCALE — IOR collective write on ibex (1 MiB per rank, one run per point)"
		switch {
		case *bundleF:
			title = fmt.Sprintf("SCALE — IOR collective write, bundled cohort executor on deterministic ibex (-netmodel %v)", netModel)
		case *jrun >= 1:
			title = fmt.Sprintf("SCALE — IOR collective write on deterministic ibex (1 MiB per rank, -jrun %d)", *jrun)
		}
		fmt.Println(stats.RenderTable(title, head, rows))
		fmt.Println()
	}

	if want("table1") || want("fig2") || want("fig3") {
		ran = true
		res, err := exp.RunTableISweep(sweep)
		if err != nil {
			fatalf("table1 sweep: %v", err)
		}
		if want("table1") {
			fmt.Println(res.Wins.Table("TABLE I — number of series in which an overlap algorithm was fastest"))
			async := 0
			for _, a := range fcoll.Algorithms {
				if a.UsesAsyncWrite() {
					async += res.Wins.TotalFor(a.String())
				}
			}
			fmt.Printf("series: %d; won by an async-write algorithm: %d (%.0f%%); by no-overlap: %d (%.0f%%)\n\n",
				res.Series, async, 100*float64(async)/float64(res.Series),
				res.Wins.TotalFor(fcoll.NoOverlap.String()),
				100*float64(res.Wins.TotalFor(fcoll.NoOverlap.String()))/float64(res.Series))
		}
		for _, figure := range []struct {
			name, pf, title string
		}{
			{"fig2", "crill", "FIG. 2 — average positive improvement over no-overlap, crill"},
			{"fig3", "ibex", "FIG. 3 — average positive improvement over no-overlap, ibex"},
		} {
			if !want(figure.name) {
				continue
			}
			im := res.Improvements[figure.pf]
			head := []string{"Benchmark"}
			for _, a := range fcoll.Algorithms[1:] {
				head = append(head, a.String())
			}
			var rows [][]string
			for _, g := range im.Groups() {
				row := []string{g}
				for _, a := range fcoll.Algorithms[1:] {
					if v, ok := im.Average(g, a.String()); ok {
						row = append(row, fmt.Sprintf("%.1f%%", 100*v))
					} else {
						row = append(row, "-")
					}
				}
				rows = append(rows, row)
			}
			fmt.Println(stats.RenderTable(figure.title, head, rows))
			fmt.Println()
		}
	}

	if want("fig1") {
		ran = true
		pts, err := exp.RunFig1(fig1NP, *runs, *jobs, progress(*verbose))
		if err != nil {
			fatalf("fig1: %v", err)
		}
		head := []string{"Platform", "np", "Algorithm", "Min time", "vs no-overlap"}
		var rows [][]string
		base := map[string]float64{}
		for _, p := range pts {
			key := p.Platform + "/" + strconv.Itoa(p.NProcs)
			if p.Algorithm == fcoll.NoOverlap.String() {
				base[key] = float64(p.Min)
			}
		}
		for _, p := range pts {
			key := p.Platform + "/" + strconv.Itoa(p.NProcs)
			imp := (base[key] - float64(p.Min)) / base[key]
			rows = append(rows, []string{
				p.Platform, strconv.Itoa(p.NProcs), p.Algorithm,
				p.Min.String(), fmt.Sprintf("%+.1f%%", 100*imp),
			})
		}
		fmt.Println(stats.RenderTable("FIG. 1 — Tile I/O 1M execution time (min of series)", head, rows))
		fmt.Println()
	}

	if want("fig4") {
		ran = true
		res, err := exp.RunFig4Sweep(sweep)
		if err != nil {
			fatalf("fig4: %v", err)
		}
		fmt.Println(res.Wins.Table("FIG. 4 — number of series in which a transfer primitive was fastest (Write-Comm-2)"))
		two := res.Wins.TotalFor(fcoll.TwoSided.String())
		fmt.Printf("two-sided share: %.0f%% of %d series\n",
			100*float64(two)/float64(res.Wins.GrandTotal()), res.Wins.GrandTotal())
		if res.CrillSmallTotal > 0 && res.CrillLargeTotal > 0 {
			fmt.Printf("crill one-sided wins: np<256: %d/%d; np>=256: %d/%d (§IV-B trend)\n",
				res.CrillSmallOneSided, res.CrillSmallTotal,
				res.CrillLargeOneSided, res.CrillLargeTotal)
		}
		fmt.Println()
	}

	if want("breakdown") {
		ran = true
		pts, err := exp.RunBreakdown(fig1NP, *jobs)
		if err != nil {
			fatalf("breakdown: %v", err)
		}
		head := []string{"Platform", "np", "comm share", "file I/O share"}
		var rows [][]string
		for _, p := range pts {
			rows = append(rows, []string{
				p.Platform, strconv.Itoa(p.NProcs),
				fmt.Sprintf("%.0f%%", 100*p.CommShare),
				fmt.Sprintf("%.0f%%", 100*p.WriteShare),
			})
		}
		fmt.Println(stats.RenderTable("§IV-A — shuffle vs file-access time split (no-overlap, Tile I/O 1M)", head, rows))
		fmt.Println()
	}

	if want("probe") || obs {
		ran = true
		if err := probeRun(fig1NP[0], *probeF, *traceJSON, *report, *metricsF, *metricsO); err != nil {
			fatalf("probe run: %v", err)
		}
	}

	if !ran {
		// Unreachable for experiment-name reasons (validateExp runs
		// first); kept as a guard for future want() logic changes.
		fatalf("experiment %q selected nothing to run", *which)
	}
	if err := prof.Stop(); err != nil {
		fatalf("profiling: %v", err)
	}
}

// validExperiments is the closed set of -exp names, in help order.
var validExperiments = []string{
	"table1", "fig1", "fig2", "fig3", "fig4", "breakdown", "probe", "scale", "select", "hier", "all",
}

// validateExp rejects unknown -exp names with the full list of valid
// ones, before any flag combination can reinterpret the selection.
func validateExp(name string) error {
	for _, v := range validExperiments {
		if name == v {
			return nil
		}
	}
	return fmt.Errorf("unknown experiment %q (valid: %s)", name, strings.Join(validExperiments, "|"))
}

// probeRun executes one instrumented Tile I/O 1M collective write
// (crill, write-comm-2-overlap, two-sided) and emits the requested
// observability artefacts. With no output flag it prints the counter
// registry so `-exp probe` alone is not silent.
func probeRun(np int, counters bool, traceJSON string, report bool, metricsF bool, metricsOut string) error {
	p := probe.New()
	var met *metrics.Metrics
	if metricsF || metricsOut != "" {
		met = metrics.New(0)
	}
	spec := exp.Spec{
		Platform:  platform.Crill(),
		NProcs:    np,
		Gen:       tileio.Tile1M(),
		Algorithm: fcoll.WriteComm2Overlap,
		Primitive: fcoll.TwoSided,
		Seed:      1,
		Probe:     p,
		Metrics:   met,
	}
	if _, err := exp.Execute(spec); err != nil {
		return err
	}
	if traceJSON != "" {
		f, err := os.Create(traceJSON)
		if err != nil {
			return err
		}
		if err := export.WriteTrace(f, p); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d probe events to %s (load in ui.perfetto.dev)\n", len(p.Events()), traceJSON)
	}
	if report {
		title := fmt.Sprintf("tileio-1m write-comm-2-overlap/two-sided np=%d", np)
		if err := export.WriteReport(os.Stdout, p, export.ReportOptions{Title: title}); err != nil {
			return err
		}
	}
	if metricsF {
		fmt.Printf("metrics summary (tileio-1m, np=%d):\n", np)
		if err := mexport.WriteSummary(os.Stdout, met); err != nil {
			return err
		}
	}
	if metricsOut != "" {
		title := fmt.Sprintf("tileio-1m write-comm-2-overlap/two-sided np=%d", np)
		if err := cli.WriteMetricsFiles(metricsOut, met, p, title); err != nil {
			return err
		}
		fmt.Printf("wrote metrics snapshot to %s.{prom,csv,html}\n", metricsOut)
	}
	if counters || (traceJSON == "" && !report && !metricsF && metricsOut == "") {
		fmt.Printf("probe counters (tileio-1m, np=%d):\n%s", np, p.Counters())
	}
	return nil
}

func progress(verbose bool) *os.File {
	if verbose {
		return os.Stderr
	}
	return nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "evalsuite: "+format+"\n", args...)
	os.Exit(1)
}
