package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"collio/internal/platform"
	"collio/internal/tune"
	"collio/internal/workload"
	"collio/internal/workload/flashio"
	"collio/internal/workload/ior"
	"collio/internal/workload/tileio"
)

// runServe is the -serve query loop: a long-running tuner over one
// shared memo cache answering line-oriented queries from in. A cold
// query schedules a design-space sweep; a warm one answers in
// O(lookup) without simulating. Commands:
//
//	select <platform> <workload> <np>   auto-tune one question
//	stats                               print cache counters
//	quit                                flush and exit
//
// Requests are served synchronously, so a signal on sig (SIGINT from
// main) drains the in-flight sweep before the loop flushes the
// on-disk cache and returns — a kill mid-sweep never truncates a
// store record (Store appends whole lines and OpenStore drops a
// torn trailing line, but the clean path never relies on that).
func runServe(in io.Reader, out io.Writer, sig <-chan os.Signal, opts tune.Options) error {
	t, err := tune.New(opts)
	if err != nil {
		return err
	}
	defer t.Close()
	fmt.Fprintf(out, "serve: ready (%d-point space%s)\n", opts.Space.Size(), serveCacheNote(opts))

	lines := make(chan string)
	scanErr := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(in)
		for sc.Scan() {
			lines <- sc.Text()
		}
		scanErr <- sc.Err()
		close(lines)
	}()

	finish := func(why string) error {
		ferr := t.Flush()
		s := t.Cache().Stats()
		fmt.Fprintf(out, "serve: %s; cache flushed (%d entries, %d hits, %d simulations)\n",
			why, s.Entries, s.Hits, s.Simulations)
		return ferr
	}
	for {
		select {
		case <-sig:
			// Any sweep that was running when the signal arrived has
			// already completed (requests are synchronous); only the
			// flush remains.
			return finish("interrupted")
		case line, ok := <-lines:
			if !ok {
				if err := finish("input closed"); err != nil {
					return err
				}
				return <-scanErr
			}
			if quit := serveRequest(out, t, line); quit {
				return finish("quit")
			}
		}
	}
}

// serveCacheNote describes the persistence mode for the banner.
func serveCacheNote(opts tune.Options) string {
	if opts.CachePath == "" {
		return ", in-memory cache"
	}
	return ", cache file " + opts.CachePath
}

// serveRequest handles one input line, reporting errors to out rather
// than failing the loop. It returns true for the quit command.
func serveRequest(out io.Writer, t *tune.Tuner, line string) (quit bool) {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return false
	}
	switch fields[0] {
	case "quit":
		return true
	case "stats":
		s := t.Cache().Stats()
		fmt.Fprintf(out, "stats: entries=%d hits=%d misses=%d simulations=%d coalesced=%d\n",
			s.Entries, s.Hits, s.Misses, s.Simulations, s.Coalesced)
	case "select":
		if len(fields) != 4 {
			fmt.Fprintf(out, "error: usage: select <crill|ibex> <workload> <np>\n")
			return false
		}
		pf, ok := servePlatform(fields[1])
		if !ok {
			fmt.Fprintf(out, "error: unknown platform %q (want crill|ibex)\n", fields[1])
			return false
		}
		gen, ok := serveWorkload(fields[2])
		if !ok {
			fmt.Fprintf(out, "error: unknown workload %q (want %s)\n", fields[2], strings.Join(serveWorkloadNames, "|"))
			return false
		}
		np, err := strconv.Atoi(fields[3])
		if err != nil || np <= 0 {
			fmt.Fprintf(out, "error: bad rank count %q\n", fields[3])
			return false
		}
		before := t.Cache().Stats().Simulations
		sel, err := t.Select(gen, pf, np)
		if err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
			return false
		}
		simulated := t.Cache().Stats().Simulations - before
		temp := "cold"
		if simulated == 0 {
			temp = "warm"
		}
		b := sel.Best
		fmt.Fprintf(out, "best: %s/%s cb=%dMiB agg=%d elapsed=%v [%s: %d/%d cached, %d simulated]\n",
			b.Config.Algorithm, b.Config.Primitive, b.Config.BufferSize>>20,
			b.Config.Aggregators, b.Result.Elapsed,
			temp, sel.Hits, sel.Evaluated, simulated)
	default:
		fmt.Fprintf(out, "error: unknown command %q (want select|stats|quit)\n", fields[0])
	}
	return false
}

// servePlatform maps a platform name to its calibrated model.
func servePlatform(name string) (platform.Platform, bool) {
	switch name {
	case "crill":
		return platform.Crill(), true
	case "ibex":
		return platform.Ibex(), true
	}
	return platform.Platform{}, false
}

// serveWorkloadNames lists the serve protocol's workload names.
var serveWorkloadNames = []string{"ior", "tileio-256", "tileio-1m", "flashio"}

// serveWorkload maps a workload name to its scaled generator.
func serveWorkload(name string) (workload.Generator, bool) {
	switch name {
	case "ior":
		return ior.Default(), true
	case "tileio-256":
		return tileio.Tile256(), true
	case "tileio-1m":
		return tileio.Tile1M(), true
	case "flashio":
		return flashio.Default(), true
	}
	return nil, false
}
