package main

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"collio/internal/exp"
	"collio/internal/fcoll"
	"collio/internal/metrics"
	"collio/internal/platform"
	"collio/internal/sim"
	"collio/internal/stats"
	"collio/internal/workload"
)

// runHierExperiment is E13: the flat two-phase family versus the
// two-level hierarchical family (node-aware aggregators, leaders-only
// size exchange, intra-node pre-combine — DESIGN.md §16), compared
// Table-I-style. For every (platform × workload × np × algorithm) cell
// both families run on the deterministic platform model and the faster
// one takes the win; the summary tallies wins per platform and
// benchmark. Each run also reports its mean per-OST utilisation from
// the metrics layer (busy time integrated per storage target), which is
// the mechanism readout: pre-combining changes the message economy in
// the shuffle, so file-phase utilisation shows whether a win came from
// the shuffle side rather than from I/O-side luck.
//
// Host-affordability gates mirror E12: cells beyond a platform's
// MaxProcs report n/a, and beyond exactCellNP ranks (where one exact
// run is minutes of host time) the sweep narrows to the paper's
// strongest algorithm and skips flashio (a single exact flashio run at
// 4096 ranks exceeds ten minutes — E12 notes).
func runHierExperiment(out io.Writer, npList []int, jobs int, verbose *os.File) error {
	type point struct {
		pf   platform.Platform
		wl   string
		gen  workload.Generator
		np   int
		algo fcoll.Algorithm
	}
	type outcome struct {
		flat, hier       exp.Result
		flatOST, hierOST float64
		err              error
	}

	var points []point
	var naRows [][]string
	for _, np := range npList {
		for _, pf := range platform.Platforms() {
			for _, name := range serveWorkloadNames {
				if np > pf.MaxProcs() {
					naRows = append(naRows, []string{pf.Name, name, strconv.Itoa(np), "-",
						fmt.Sprintf("n/a — np beyond %s's MaxProcs=%d", pf.Name, pf.MaxProcs()),
						"-", "-", "-", "-", "-"})
					continue
				}
				algos := fcoll.Algorithms
				if np > exactCellNP {
					if name == "flashio" {
						naRows = append(naRows, []string{pf.Name, name, strconv.Itoa(np), "-",
							"n/a — exact run impractical at this np (E12 notes)",
							"-", "-", "-", "-", "-"})
						continue
					}
					algos = []fcoll.Algorithm{fcoll.WriteComm2Overlap}
				}
				gen, _ := serveWorkload(name)
				for _, a := range algos {
					points = append(points, point{pf: pf, wl: name, gen: gen, np: np, algo: a})
				}
			}
		}
	}

	outcomes := make([]outcome, len(points))
	exp.ForEach(jobs, len(points), func(i int) {
		p := points[i]
		run := func(hier bool) (exp.Result, float64, error) {
			met := metrics.New(0)
			res, err := exp.Execute(exp.Spec{
				Platform:     p.pf.Deterministic(),
				NProcs:       p.np,
				Gen:          p.gen,
				Algorithm:    p.algo,
				Primitive:    fcoll.TwoSided,
				Hierarchical: hier,
				Metrics:      met,
			})
			if err != nil {
				return res, 0, err
			}
			return res, meanOSTUtilisation(met, res.Elapsed), nil
		}
		var o outcome
		o.flat, o.flatOST, o.err = run(false)
		if o.err == nil {
			o.hier, o.hierOST, o.err = run(true)
		}
		outcomes[i] = o
		if verbose != nil {
			fmt.Fprintf(verbose, "hier: %s/%s np=%d %v done\n", p.pf.Name, p.wl, p.np, p.algo)
		}
	})

	type tallyKey struct{ pf, wl string }
	flatWins := map[tallyKey]int{}
	hierWins := map[tallyKey]int{}
	head := []string{"Platform", "Workload", "np", "Algorithm", "Flat", "Hier", "Δ hier",
		"Winner", "OST util flat", "OST util hier"}
	var rows [][]string
	for i, p := range points {
		o := outcomes[i]
		if o.err != nil {
			rows = append(rows, []string{p.pf.Name, p.wl, strconv.Itoa(p.np), p.algo.String(),
				fmt.Sprintf("n/a (%v)", o.err), "-", "-", "-", "-", "-"})
			continue
		}
		imp := (float64(o.flat.Elapsed) - float64(o.hier.Elapsed)) / float64(o.flat.Elapsed)
		winner := "flat"
		k := tallyKey{p.pf.Name, p.wl}
		if o.hier.Elapsed < o.flat.Elapsed {
			winner = "hier"
			hierWins[k]++
		} else {
			flatWins[k]++
		}
		rows = append(rows, []string{
			p.pf.Name, p.wl, strconv.Itoa(p.np), p.algo.String(),
			o.flat.Elapsed.String(), o.hier.Elapsed.String(),
			fmt.Sprintf("%+.1f%%", 100*imp), winner,
			fmt.Sprintf("%.0f%%", 100*o.flatOST), fmt.Sprintf("%.0f%%", 100*o.hierOST),
		})
	}
	rows = append(rows, naRows...)
	fmt.Fprintln(out, stats.RenderTable(
		"E13 — flat vs hierarchical two-level collective write (deterministic platforms, two-sided)",
		head, rows))
	fmt.Fprintln(out)

	whead := []string{"Platform", "Workload", "Flat wins", "Hier wins"}
	var wrows [][]string
	for _, pf := range platform.Platforms() {
		for _, name := range serveWorkloadNames {
			k := tallyKey{pf.Name, name}
			if flatWins[k]+hierWins[k] == 0 {
				continue
			}
			wrows = append(wrows, []string{pf.Name, name,
				strconv.Itoa(flatWins[k]), strconv.Itoa(hierWins[k])})
		}
	}
	fmt.Fprintln(out, stats.RenderTable(
		"E13 — number of cells in which a family was fastest (Table-I framing)",
		whead, wrows))
	return nil
}

// meanOSTUtilisation averages busy-time utilisation over the storage
// targets that served the run: Σ busy_ns / (targets × makespan). The
// metrics layer records one "ost.<n>.busy_ns" gauge per active target.
func meanOSTUtilisation(m *metrics.Metrics, elapsed sim.Time) float64 {
	var busy int64
	targets := 0
	for _, g := range m.Gauges() {
		parts := strings.Split(g.Name(), ".")
		if len(parts) == 3 && parts[0] == "ost" && parts[2] == "busy_ns" {
			busy += g.Total()
			targets++
		}
	}
	if targets == 0 || elapsed <= 0 {
		return 0
	}
	return float64(busy) / (float64(targets) * float64(elapsed))
}
