package main

import (
	"strings"
	"testing"
)

func TestValidateExpAcceptsAllKnown(t *testing.T) {
	for _, name := range validExperiments {
		if err := validateExp(name); err != nil {
			t.Errorf("validateExp(%q) = %v, want nil", name, err)
		}
	}
}

func TestValidateExpRejectsUnknown(t *testing.T) {
	// "tabel1" is the regression shape: before the upfront check, a
	// typoed -exp combined with any observability flag silently ran the
	// probe experiment instead of failing.
	for _, name := range []string{"tabel1", "", "Scale", "fig5", "all "} {
		err := validateExp(name)
		if err == nil {
			t.Errorf("validateExp(%q) accepted", name)
			continue
		}
		for _, v := range validExperiments {
			if !strings.Contains(err.Error(), v) {
				t.Errorf("validateExp(%q) error %q does not list %q", name, err, v)
			}
		}
	}
}
