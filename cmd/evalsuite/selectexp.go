package main

import (
	"fmt"
	"io"
	"strconv"

	"collio/internal/exp"
	"collio/internal/fcoll"
	"collio/internal/platform"
	"collio/internal/stats"
	"collio/internal/tune"
	"collio/internal/workload"
)

// runSelectExperiment is E12: the auto-tuner versus every fixed-
// algorithm policy. For each (platform × workload × np) cell it runs
// tune.Select over the design space, reports the predicted-best
// configuration, and tallies how often the tuner strictly beats a
// policy that always picks one fixed algorithm (at that algorithm's
// own best buffer size / aggregator count — the strongest version of
// the fixed policy). The tuner picks the minimum over a superset, so
// it never loses; the interesting number is how often "always
// algorithm X" leaves time on the table.
//
// Cells the platform cannot host (np beyond MaxProcs) report n/a and
// are excluded from the tally, as are cells the host cannot afford:
// beyond exactCellNP ranks a sweep is only attempted when the bundled
// fast path will actually engage (-bundle set, two-sided-only space,
// and exp.Collapsible confirms the workload's cohorts collapse) — a
// single exact flashio run at 4096 ranks exceeds ten minutes of host
// time, so a 10-config exact sweep of that cell is an hours-long job
// this driver refuses rather than silently starts.
// exactCellNP is the largest rank count at which an exact-executor
// design-space sweep is still a minutes-scale job on one host core
// (the paper's own 576-rank points sweep in ~5 min; 4096 exact is
// hours). Cells beyond it require the bundled fast path.
const exactCellNP = 1024

func runSelectExperiment(out io.Writer, npList []int, opts tune.Options) error {
	t, err := tune.New(opts)
	if err != nil {
		return err
	}
	defer t.Close()

	type cellID struct {
		pf  platform.Platform
		wl  string
		gen workload.Generator
		np  int
	}
	var cells []cellID
	for _, np := range npList {
		for _, pf := range platform.Platforms() {
			for _, name := range serveWorkloadNames {
				if name == "tileio-256" {
					continue // paper's three benchmarks: ior, tileio-1m, flashio
				}
				gen, _ := serveWorkload(name)
				cells = append(cells, cellID{pf: pf, wl: name, gen: gen, np: np})
			}
		}
	}

	// The bundled fast path engages only for two-sided shuffles; any
	// one-sided point in the space forces the exact executor.
	twoSidedOnly := len(opts.Space.Primitives) == 0 ||
		(len(opts.Space.Primitives) == 1 && opts.Space.Primitives[0] == fcoll.TwoSided)

	wins := map[string]int{}
	ties := map[string]int{}
	tallied := 0
	head := []string{"Platform", "Workload", "np", "Best configuration", "Predicted", "Cache"}
	var rows [][]string
	for _, c := range cells {
		if c.np > exactCellNP && c.np <= c.pf.MaxProcs() &&
			!(opts.Bundle && twoSidedOnly && exp.Collapsible(c.gen, c.pf, c.np)) {
			rows = append(rows, []string{c.pf.Name, c.wl, strconv.Itoa(c.np),
				"n/a (exact-path sweep impractical at this np; see E12 notes)", "-", "-"})
			continue
		}
		sel, err := t.Select(c.gen, c.pf, c.np)
		if err != nil {
			rows = append(rows, []string{c.pf.Name, c.wl, strconv.Itoa(c.np),
				fmt.Sprintf("n/a (%v)", err), "-", "-"})
			continue
		}
		b := sel.Best
		rows = append(rows, []string{
			c.pf.Name, c.wl, strconv.Itoa(c.np),
			fmt.Sprintf("%s/%s cb=%dMiB agg=%d", b.Config.Algorithm, b.Config.Primitive,
				b.Config.BufferSize>>20, b.Config.Aggregators),
			b.Result.Elapsed.String(),
			fmt.Sprintf("%d/%d hit", sel.Hits, sel.Evaluated),
		})
		// Best the fixed policy "always algorithm a" could do in this
		// cell, minimized over the remaining axes.
		tallied++
		for _, a := range normalizedAlgorithms(opts.Space) {
			bestFixed := int64(-1)
			for _, cand := range sel.Candidates {
				if cand.Err != nil || cand.Config.Algorithm != a {
					continue
				}
				if bestFixed < 0 || int64(cand.Result.Elapsed) < bestFixed {
					bestFixed = int64(cand.Result.Elapsed)
				}
			}
			if bestFixed < 0 {
				continue // algorithm infeasible in this cell
			}
			if int64(b.Result.Elapsed) < bestFixed {
				wins[a.String()]++
			} else {
				ties[a.String()]++
			}
		}
	}
	title := fmt.Sprintf("SELECT — auto-tuned configuration per cell (%d-point space)", opts.Space.Size())
	fmt.Fprintln(out, stats.RenderTable(title, head, rows))
	fmt.Fprintln(out)

	whead := []string{"Fixed policy", "Tuner wins", "Ties", "Cells"}
	var wrows [][]string
	for _, a := range normalizedAlgorithms(opts.Space) {
		n := a.String()
		wrows = append(wrows, []string{
			"always " + n, strconv.Itoa(wins[n]), strconv.Itoa(ties[n]),
			strconv.Itoa(wins[n] + ties[n]),
		})
	}
	fmt.Fprintln(out, stats.RenderTable(
		fmt.Sprintf("E12 — tuner vs fixed-algorithm policies (%d cells; a tie means the policy's best point matches the tuner's)", tallied),
		whead, wrows))
	return nil
}

// normalizedAlgorithms returns the algorithm axis the sweep actually
// used (the Space default when unset).
func normalizedAlgorithms(s tune.Space) []fcoll.Algorithm {
	if len(s.Algorithms) > 0 {
		return s.Algorithms
	}
	return fcoll.Algorithms
}
