package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"collio/internal/tune"
)

// syncBuffer lets the test poll serve output while runServe writes it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestServeQueryLoop drives the -serve protocol end to end: a cold
// select simulates, the identical warm select answers from the cache
// without simulating, stats reflects both, and quit flushes.
func TestServeQueryLoop(t *testing.T) {
	in := strings.NewReader("select crill ior 8\nselect crill ior 8\nbogus\nstats\nquit\n")
	var out syncBuffer
	err := runServe(in, &out, make(chan os.Signal), tune.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, w := range []string{
		"serve: ready",
		"[cold:",
		"[warm: 10/10 cached, 0 simulated]",
		`unknown command "bogus"`,
		"stats: entries=10",
		"serve: quit; cache flushed (10 entries",
	} {
		if !strings.Contains(got, w) {
			t.Errorf("serve output missing %q:\n%s", w, got)
		}
	}
	// The warm answer line must match the cold one up to the cache
	// annotation (same best configuration, same predicted time).
	lines := strings.Split(got, "\n")
	var bests []string
	for _, l := range lines {
		if strings.HasPrefix(l, "best:") {
			bests = append(bests, l[:strings.Index(l, " [")])
		}
	}
	if len(bests) != 2 || bests[0] != bests[1] {
		t.Errorf("warm answer differs from cold: %q", bests)
	}
}

// TestServeBadRequests: malformed requests report errors without
// killing the loop.
func TestServeBadRequests(t *testing.T) {
	in := strings.NewReader("select nowhere ior 8\nselect crill nothing 8\nselect crill ior zero\nselect\nquit\n")
	var out syncBuffer
	if err := runServe(in, &out, make(chan os.Signal), tune.Options{Parallel: 1}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, w := range []string{
		`unknown platform "nowhere"`,
		`unknown workload "nothing"`,
		`bad rank count "zero"`,
		"usage: select",
		"serve: quit",
	} {
		if !strings.Contains(got, w) {
			t.Errorf("serve output missing %q:\n%s", w, got)
		}
	}
}

// sigOnSecondRead delivers one request line, then — on the serve
// loop's next read, which happens strictly after the request has been
// handed to the request loop (the hand-off channel is unbuffered) —
// fires a signal and blocks. That pins the interrupt to land while the
// sweep is in flight, deterministically.
type sigOnSecondRead struct {
	line string
	sig  chan<- os.Signal
	read bool
}

func (r *sigOnSecondRead) Read(p []byte) (int, error) {
	if !r.read {
		r.read = true
		return copy(p, r.line), nil
	}
	r.sig <- os.Interrupt
	select {} // block: input stays open, only the signal can end the loop
}

// TestServeSIGINTDrainsAndFlushes: a SIGINT delivered while a sweep is
// in flight lets the sweep finish (requests are synchronous), then
// flushes the on-disk cache before the loop returns — a fresh process
// opening the store sees every record and serves warm.
func TestServeSIGINTDrainsAndFlushes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.jsonl")
	var out syncBuffer
	sig := make(chan os.Signal, 1)
	in := &sigOnSecondRead{line: "select crill ior 8\n", sig: sig}
	errc := make(chan error, 1)
	go func() {
		errc <- runServe(in, &out, sig, tune.Options{Parallel: 1, CachePath: path})
	}()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("runServe: %v", err)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("runServe did not exit after SIGINT")
	}
	got := out.String()
	if !strings.Contains(got, "best:") {
		t.Fatalf("in-flight sweep was not drained:\n%s", got)
	}
	if !strings.Contains(got, "serve: interrupted; cache flushed (10 entries") {
		t.Fatalf("no flush report after SIGINT:\n%s", got)
	}

	// The flush was real: a second serve process over the same store
	// answers warm without simulating.
	in2 := strings.NewReader("select crill ior 8\nquit\n")
	var out2 syncBuffer
	if err := runServe(in2, &out2, make(chan os.Signal), tune.Options{Parallel: 1, CachePath: path}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2.String(), "[warm: 10/10 cached, 0 simulated]") {
		t.Fatalf("restarted serve did not hit the flushed store:\n%s", out2.String())
	}
}

// TestValidateExpSelect: the select experiment is a valid -exp name and
// typos near it are still rejected with the full list.
func TestValidateExpSelect(t *testing.T) {
	if err := validateExp("select"); err != nil {
		t.Fatalf("validateExp(select): %v", err)
	}
	err := validateExp("selects")
	if err == nil {
		t.Fatal("validateExp accepted a typo")
	}
	if !strings.Contains(err.Error(), "select") {
		t.Errorf("rejection should list valid names: %v", err)
	}
}
