# collio build/verify entry points. `make check` is the tier-1 gate
# (see ROADMAP.md): compile, vet, the collvet invariant suite, and the
# full test suite under the race detector.

GO ?= go

.PHONY: check build vet collvet test race bench bench-diff

check: build vet collvet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

collvet:
	$(GO) run ./cmd/collvet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# `make bench` also persists the machine-readable perf trajectory for
# this PR: the raw stream passes through cmd/benchjson into BENCHOUT,
# and when BENCHBASE names a prior BENCH_*.json the per-benchmark deltas
# print to stderr. BENCHTIME=1x (the default) runs every simulation
# once — enough for the deterministic sim-ms/op numbers; raise it to
# steady wall-clock measurements.
#
# Note the division of labour with `make race`: benchmarks and the
# parallel sweep runner (-j) measure throughput, while the race lane
# runs the whole test suite — including the parallel-vs-sequential
# equivalence tests — under the race detector. Perf numbers come from
# bench, concurrency-correctness evidence from race.
BENCHTIME ?= 1x
BENCHOUT ?= BENCH_PR4.json
BENCHBASE ?= BENCH_PR3.json
BENCHDIFF = $(if $(wildcard $(BENCHBASE)),-diff $(BENCHBASE),)

bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) ./... | tee /dev/stderr | $(GO) run ./cmd/benchjson $(BENCHDIFF) > $(BENCHOUT)

# `make bench-diff` is the CI-style regression gate: re-run the
# benchmarks and fail non-zero if ns/op regressed beyond BENCHFAIL
# percent against the committed baseline. The gate covers only the
# long-running end-to-end benchmarks (BENCHGATE) — sub-millisecond
# micro-benchmarks at BENCHTIME=1x carry too much wall-clock noise to
# gate on, though their deltas still print for inspection. The JSON
# goes to a scratch file so the gate never clobbers the committed
# trajectory.
BENCHFAIL ?= 30
BENCHGATE ?= RunSeries|TableISweep|ScaleSweep

bench-diff:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) ./... | $(GO) run ./cmd/benchjson -diff $(BENCHBASE) -fail-above $(BENCHFAIL) -gate '$(BENCHGATE)' > /dev/null
