# collio build/verify entry points. `make check` is the tier-1 gate
# (see ROADMAP.md): compile, vet, the collvet invariant suite, and the
# full test suite under the race detector.

GO ?= go

.PHONY: check build vet collvet test race bench

check: build vet collvet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

collvet:
	$(GO) run ./cmd/collvet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...
