# collio build/verify entry points. `make check` is the tier-1 gate
# (see ROADMAP.md): compile, vet, the collvet invariant suite, and the
# full test suite under the race detector.

GO ?= go

.PHONY: check build vet collvet test race race-parallel bench bench-diff metrics-smoke scale-smoke select-smoke

check: build vet collvet race-parallel select-smoke race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# -time prints per-analyzer wall time so a slow analyzer shows up in
# the gate, not in a profiler session later. Results are cached
# per-package (keyed by source+config hash) under the user cache dir.
collvet:
	$(GO) run ./cmd/collvet -time ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# `make race-parallel` is the dedicated race lane for the conservative
# parallel executor: the sequential-equivalence matrix runs every spec
# at -jrun 1/2/4, so the window workers, barrier merge and shard fold
# all execute multi-threaded under the race detector on a small
# workload. It runs first in `make check` so a data race in the
# executor surfaces in seconds instead of at the end of the full race
# suite.
race-parallel:
	$(GO) test -race -count=1 -run 'TestParallelRunMatchesSequential' ./internal/exp/
	$(GO) test -race -count=1 -run 'TestPartitionMatchesSequential' ./internal/sim/

# `make bench` also persists the machine-readable perf trajectory for
# this PR: the raw stream passes through cmd/benchjson into BENCHOUT,
# and when BENCHBASE names a prior BENCH_*.json the per-benchmark deltas
# print to stderr. BENCHTIME=1x (the default) runs every simulation
# once — enough for the deterministic sim-ms/op numbers; raise it to
# steady wall-clock measurements.
#
# Note the division of labour with `make race`: benchmarks and the
# parallel sweep runner (-j) measure throughput, while the race lane
# runs the whole test suite — including the parallel-vs-sequential
# equivalence tests — under the race detector. Perf numbers come from
# bench, concurrency-correctness evidence from race.
BENCHTIME ?= 1x
BENCHOUT ?= BENCH_PR10.json
BENCHBASE ?= BENCH_PR9.json
BENCHDIFF = $(if $(wildcard $(BENCHBASE)),-diff $(BENCHBASE),)

bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) ./... | tee /dev/stderr | $(GO) run ./cmd/benchjson $(BENCHDIFF) > $(BENCHOUT)

# `make bench-diff` is the CI-style regression gate: re-run the
# benchmarks and fail non-zero if ns/op regressed beyond BENCHFAIL
# percent against the committed baseline. The ns/op gate covers only
# the long-running end-to-end benchmarks (BENCHGATE, >= 10 s per
# iteration) — shorter benchmarks run a single iteration at
# BENCHTIME=1x and carry far too much wall-clock noise to gate on
# (RunSeries/TableISweep have been observed swinging +-60% between
# otherwise-identical runs on a loaded host), though their deltas still
# print for inspection. The JSON goes to a scratch file so the gate
# never clobbers the committed trajectory.
BENCHFAIL ?= 30
# Allocation counts are deterministic (no wall-clock noise), so the
# allocs/op gate is far tighter than the ns/op one — and it safely
# covers the short benchmarks the ns/op gate must exclude: PR 4's 32%
# alloc win cannot silently erode anywhere.
BENCHALLOCFAIL ?= 5
BENCHGATE ?= ScaleSweep|ParallelRun|CohortScale|SelectColdVsWarm|HierarchicalSweep
BENCHALLOCGATE ?= RunSeries|TableISweep|ScaleSweep|ParallelRun|CohortScale|SelectColdVsWarm|HierarchicalSweep

bench-diff:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) ./... | $(GO) run ./cmd/benchjson -diff $(BENCHBASE) -fail-above $(BENCHFAIL) -fail-allocs-above $(BENCHALLOCFAIL) -gate '$(BENCHGATE)' -allocs-gate '$(BENCHALLOCGATE)' > /dev/null

# `make scale-smoke` is the acceptance check for the bundled cohort
# executor's scale path: a 65536-rank IOR collective write on the fluid
# network model must finish inside the test's 10-second wall budget
# (the run itself takes well under a second; the budget absorbs loaded
# hosts). -count=1 defeats the test cache — a cached PASS proves
# nothing about this host.
scale-smoke:
	$(GO) test -count=1 -run 'TestScaleSmoke65k' -v ./internal/exp/

# `make select-smoke` is the acceptance check for the auto-tuner's
# memo cache: one cold design-space sweep, then a warm re-query that
# must hit the cache on every grid point, answer bit-identically, and
# come back at least 100x faster than the cold sweep. Part of `make
# check` (it runs in ~2 s); -count=1 defeats the test cache.
select-smoke:
	$(GO) test -count=1 -run 'TestSelectSmoke' -v ./internal/tune/

# `make metrics-smoke` exercises the telemetry surface end to end: one
# small iorbench run with -metrics and -metrics-out, then the .prom
# snapshot is parsed back through cmd/metricsdiff (a self-diff with
# -fail-changed must exit zero, proving the exporter emits what the
# parser reads), and the csv/html artefacts are checked non-empty.
METRICS_SMOKE_DIR = $(or $(TMPDIR),/tmp)/collio-metrics-smoke

metrics-smoke:
	mkdir -p $(METRICS_SMOKE_DIR)
	$(GO) run ./cmd/iorbench -np 8 -runs 1 -metrics -metrics-out $(METRICS_SMOKE_DIR)/run > $(METRICS_SMOKE_DIR)/summary.txt
	$(GO) run ./cmd/metricsdiff -changed -fail-changed $(METRICS_SMOKE_DIR)/run.prom $(METRICS_SMOKE_DIR)/run.prom
	test -s $(METRICS_SMOKE_DIR)/run.csv
	test -s $(METRICS_SMOKE_DIR)/run.html
	grep -q 'fs.chunk_latency_ns' $(METRICS_SMOKE_DIR)/summary.txt
