// Package collio is a simulation-backed reproduction of "On Overlapping
// Communication and File I/O in Collective Write Operation" (Feki &
// Gabriel, IPPS 2020): a two-phase collective-write engine with the
// paper's four cycle-overlap algorithms and three shuffle transfer
// primitives, running on a deterministic discrete-event model of an MPI
// cluster (ranks, eager/rendezvous messaging with realistic progress
// semantics, one-sided communication, a striped parallel file system,
// and calibrated models of the paper's two evaluation platforms).
//
// The root package is a facade over the internal engine. Typical use:
//
//	pf := collio.Crill()
//	cluster, err := pf.Instantiate(64, seed)
//	// build a job view from a workload generator ...
//	views, _ := collio.TileIO1M().Views(64, false, seed)
//	file := collio.OpenFile(cluster.World, cluster.FS.Open("out"))
//	file.SetCollectiveOptions(collio.Options{
//	    Algorithm:  collio.WriteOverlap,
//	    BufferSize: 32 << 20,
//	})
//	cluster.World.Launch(func(r *collio.Rank) {
//	    for _, jv := range views {
//	        file.WriteAll(r, jv)
//	    }
//	})
//	cluster.Kernel.Run()
//
// or, one level higher, the experiment runner:
//
//	m, err := collio.Run(collio.Spec{
//	    Platform:  collio.Ibex(),
//	    NProcs:    256,
//	    Gen:       collio.TileIO1M(),
//	    Algorithm: collio.WriteCommOverlap,
//	})
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured comparison of every table and figure.
package collio

import (
	"collio/internal/datatype"
	"collio/internal/exp"
	"collio/internal/fcoll"
	"collio/internal/mpi"
	"collio/internal/mpiio"
	"collio/internal/platform"
	"collio/internal/sim"
	"collio/internal/simfs"
	"collio/internal/tune"
	"collio/internal/workload"
	"collio/internal/workload/flashio"
	"collio/internal/workload/ior"
	"collio/internal/workload/tileio"
)

// Core collective-write types.
type (
	// Algorithm selects the cycle-overlap strategy (paper §III-A).
	Algorithm = fcoll.Algorithm
	// Primitive selects the shuffle transfer implementation (§III-B).
	Primitive = fcoll.Primitive
	// DomainLayout selects the aggregator file-domain strategy.
	DomainLayout = fcoll.DomainLayout
	// Options configure one collective write.
	Options = fcoll.Options
	// Result is per-rank collective-write accounting.
	Result = fcoll.Result
	// JobView describes a collective write (one view per rank).
	JobView = fcoll.JobView
	// RankView is one rank's file extents and data.
	RankView = fcoll.RankView
)

// Overlap algorithms (paper Algorithms 1–4 plus the baseline, and the
// event-driven extension scheduler).
const (
	NoOverlap         = fcoll.NoOverlap
	CommOverlap       = fcoll.CommOverlap
	WriteOverlap      = fcoll.WriteOverlap
	WriteCommOverlap  = fcoll.WriteCommOverlap
	WriteComm2Overlap = fcoll.WriteComm2Overlap
	DataflowOverlap   = fcoll.DataflowOverlap
)

// Shuffle transfer primitives (the paper's three plus the PSCW
// extension).
const (
	TwoSided      = fcoll.TwoSided
	OneSidedFence = fcoll.OneSidedFence
	OneSidedLock  = fcoll.OneSidedLock
	OneSidedPSCW  = fcoll.OneSidedPSCW
)

// File-domain layouts.
const (
	ContiguousDomains = fcoll.ContiguousDomains
	RoundRobinWindows = fcoll.RoundRobinWindows
)

// Algorithms lists the paper's overlap strategies in paper order;
// AllAlgorithms adds the extensions.
var (
	Algorithms    = fcoll.Algorithms
	AllAlgorithms = fcoll.AllAlgorithms
)

// Primitives lists the paper's shuffle primitives in paper order;
// AllPrimitives adds the extensions.
var (
	Primitives    = fcoll.Primitives
	AllPrimitives = fcoll.AllPrimitives
)

// Simulation substrate types.
type (
	// Time is virtual time in nanoseconds.
	Time = sim.Time
	// Kernel is the discrete-event simulation engine.
	Kernel = sim.Kernel
	// Rank is one simulated MPI process.
	Rank = mpi.Rank
	// World is the rank set (MPI_COMM_WORLD).
	World = mpi.World
	// File is an MPI-IO style shared file handle.
	File = mpiio.File
	// FS is the simulated striped parallel file system.
	FS = simfs.FS
	// Platform is a reproducible cluster model.
	Platform = platform.Platform
	// Cluster is an instantiated platform simulation.
	Cluster = platform.Cluster
)

// Crill returns the calibrated model of the University of Houston crill
// cluster (16×48 cores, QDR IB, node-local BeeGFS, dedicated).
func Crill() Platform { return platform.Crill() }

// Ibex returns the calibrated model of the KAUST Ibex Skylake partition
// (108×40 cores, QDR IB, large shared BeeGFS).
func Ibex() Platform { return platform.Ibex() }

// Platforms returns the paper's two clusters.
func Platforms() []Platform { return platform.Platforms() }

// NewJobView validates and wraps per-rank views (dense, non-overlapping
// collective writes).
func NewJobView(ranks []RankView) (*JobView, error) { return fcoll.NewJobView(ranks) }

// OpenFile binds a world to a simulated file (MPI_File_open).
func OpenFile(w *World, f *simfs.File) *File { return mpiio.Open(w, f) }

// DefaultOptions returns the paper's collective configuration: 32 MiB
// buffer, automatic aggregators, two-sided transfers, no overlap.
func DefaultOptions() Options { return fcoll.DefaultOptions() }

// Derived-datatype helpers for building custom file views.
type (
	// Extent is a contiguous byte range in a file.
	Extent = datatype.Extent
	// Datatype describes an MPI-style derived data layout.
	Datatype = datatype.Type
)

// BytesType is a contiguous run of n raw bytes.
func BytesType(n int64) Datatype { return datatype.Bytes(n) }

// Contiguous builds count back-to-back copies of elem.
func Contiguous(count int64, elem Datatype) Datatype { return datatype.Contiguous(count, elem) }

// Vector builds an MPI_Type_vector-style strided layout.
func Vector(count, blocklen, stride int64, elem Datatype) Datatype {
	return datatype.Vector(count, blocklen, stride, elem)
}

// Subarray builds an MPI_Type_create_subarray-style n-dimensional box
// (C order) with elemSize-byte elements.
func Subarray(sizes, subsizes, starts []int64, elemSize int64) Datatype {
	return datatype.Subarray(sizes, subsizes, starts, elemSize)
}

// Flatten materialises a datatype's extents at a base file offset.
func Flatten(t Datatype, base int64) []Extent { return datatype.Flatten(t, base) }

// Workload generators for the paper's three benchmarks.
type Generator = workload.Generator

// IOR returns the scaled IOR configuration (1-D contiguous blocks).
func IOR() ior.Config { return ior.Default() }

// TileIO256 returns the scaled Tile I/O configuration with 256-byte
// elements (heavily fragmented views).
func TileIO256() tileio.Config { return tileio.Tile256() }

// TileIO1M returns the scaled Tile I/O configuration with 1 MiB
// elements (large contiguous runs).
func TileIO1M() tileio.Config { return tileio.Tile1M() }

// FlashIO returns the scaled FLASH-IO checkpoint configuration.
func FlashIO() flashio.Config { return flashio.Default() }

// Experiment runner types.
type (
	// Spec is one fully-specified benchmark run.
	Spec = exp.Spec
	// Metrics is the outcome of one run.
	Metrics = exp.Metrics
)

// Run executes one benchmark run on a simulated platform and returns
// its metrics.
func Run(spec Spec) (Metrics, error) { return exp.Execute(spec) }

// Auto-tuner types. Config is the canonical identity of one run (the
// digest-keyed cache key); Metrics above is the memoized value.
type (
	// Config is the canonical identity of one simulation run: every
	// result-determining field and nothing else. Its SHA-256 Digest
	// keys the tuner's memo cache.
	Config = exp.Config
	// Digest is the SHA-256 content digest of a Config's canonical
	// encoding — stable across processes and hosts.
	Digest = exp.Digest
	// TuneSpace is the design-space grid Select sweeps (algorithm ×
	// primitive × collective-buffer size × aggregator count ×
	// flat/hierarchical family).
	TuneSpace = tune.Space
	// TuneOptions shape a Select sweep: grid, parallelism, executor
	// strategy and on-disk cache path.
	TuneOptions = tune.Options
	// Tuner answers repeated Select queries against one shared memo
	// cache.
	Tuner = tune.Tuner
	// Selection is the answer to one Select query: the predicted-best
	// candidate plus every evaluated grid point.
	Selection = tune.Selection
	// Candidate is one evaluated grid point of a Selection.
	Candidate = tune.Candidate
)

// NewTuner builds a Tuner, opening (or creating) the on-disk memo
// cache when opts.CachePath is set.
func NewTuner(opts TuneOptions) (*Tuner, error) { return tune.New(opts) }

// HierarchicalTuneSpace returns the design-space grid that sweeps the
// flat and two-level hierarchical families side by side (every paper
// algorithm, two-sided, both common buffer sizes — 20 points). Select
// over this space arbitrates per cell whether node-aware pre-combining
// wins (DESIGN.md §16); flat precedes hierarchical in the canonical
// order, so a hierarchical winner always won strictly.
func HierarchicalTuneSpace() TuneSpace { return tune.HierarchicalSpace() }

// Select auto-tunes the collective write for one workload, platform
// and rank count: it sweeps opts.Space (DefaultSpace when zero)
// through the simulator, memoizes every point by Config digest, and
// returns the predicted-best configuration with its predicted Metrics.
// A repeated query — same question, warm cache — answers in O(lookup)
// without simulating; for a long-lived cache across queries (or the
// on-disk store), build a Tuner once and reuse it.
func Select(gen Generator, pf Platform, nprocs int, opts TuneOptions) (Selection, error) {
	t, err := tune.New(opts)
	if err != nil {
		return Selection{}, err
	}
	defer t.Close()
	return t.Select(gen, pf, nprocs)
}
