package collio_test

import (
	"fmt"
	"log"

	"collio"
)

// ExampleRun measures one benchmark configuration on a simulated
// platform — the one-call entry point for experiments.
func ExampleRun() {
	m, err := collio.Run(collio.Spec{
		Platform:  collio.Crill(),
		NProcs:    16,
		Gen:       collio.IOR(),
		Algorithm: collio.WriteOverlap,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote MiB:", m.BytesWritten>>20)
	fmt.Println("aggregators:", m.Aggregators)
	// Output:
	// wrote MiB: 256
	// aggregators: 1
}

// ExampleNewJobView builds a custom collective view from derived
// datatypes: two ranks interleaving 2-D tiles.
func ExampleNewJobView() {
	grid := []int64{4, 4} // 4x4 elements of 8 bytes
	left := collio.Subarray(grid, []int64{4, 2}, []int64{0, 0}, 8)
	right := collio.Subarray(grid, []int64{4, 2}, []int64{0, 2}, 8)
	jv, err := collio.NewJobView([]collio.RankView{
		{Extents: collio.Flatten(left, 0)},
		{Extents: collio.Flatten(right, 0)},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("total bytes:", jv.TotalBytes())
	fmt.Println("rank 0 fragments:", len(jv.Ranks[0].Extents))
	// Output:
	// total bytes: 128
	// rank 0 fragments: 4
}

// ExamplePlatform_Instantiate shows the low-level flow: instantiate a
// cluster, open a file, run a collective on every rank.
func ExamplePlatform_Instantiate() {
	cluster, err := collio.Ibex().Instantiate(8, 7)
	if err != nil {
		log.Fatal(err)
	}
	views, err := collio.FlashIO().Views(8, false, 7)
	if err != nil {
		log.Fatal(err)
	}
	file := collio.OpenFile(cluster.World, cluster.FS.Open("ckpt"))
	opts := collio.DefaultOptions()
	opts.Algorithm = collio.WriteComm2Overlap
	file.SetCollectiveOptions(opts)
	cluster.World.Launch(func(r *collio.Rank) {
		for _, jv := range views {
			if _, err := file.WriteAll(r, jv); err != nil {
				log.Fatal(err)
			}
		}
	})
	cluster.Kernel.Run()
	fmt.Println("collectives:", len(views))
	fmt.Println("file contiguous:", file.Raw().Contiguous())
	// Output:
	// collectives: 6
	// file contiguous: true
}
