package collio_test

import (
	"testing"

	"collio"
)

// TestFacadeQuickstart drives the public API end to end the way the
// README's quickstart does.
func TestFacadeQuickstart(t *testing.T) {
	const nprocs = 8
	cluster, err := collio.Crill().Instantiate(nprocs, 1)
	if err != nil {
		t.Fatal(err)
	}
	views, err := collio.IOR().Views(nprocs, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	file := collio.OpenFile(cluster.World, cluster.FS.Open("t"))
	opts := collio.DefaultOptions()
	opts.Algorithm = collio.WriteOverlap
	file.SetCollectiveOptions(opts)
	results := make([]collio.Result, nprocs)
	cluster.World.Launch(func(r *collio.Rank) {
		res, err := file.WriteAll(r, views[0])
		if err != nil {
			t.Errorf("rank %d: %v", r.ID(), err)
		}
		results[r.ID()] = res
	})
	cluster.Kernel.Run()
	if cluster.World.Elapsed() <= 0 {
		t.Fatal("no elapsed time")
	}
	var written int64
	for _, res := range results {
		written += res.BytesWritten
	}
	if written != views[0].TotalBytes() {
		t.Fatalf("wrote %d of %d bytes", written, views[0].TotalBytes())
	}
}

func TestFacadeRun(t *testing.T) {
	m, err := collio.Run(collio.Spec{
		Platform:  collio.Ibex(),
		NProcs:    16,
		Gen:       collio.FlashIO(),
		Algorithm: collio.WriteComm2Overlap,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Elapsed <= 0 || m.BytesWritten <= 0 {
		t.Fatalf("degenerate metrics %+v", m)
	}
}

func TestFacadeDatatypes(t *testing.T) {
	sub := collio.Subarray([]int64{4, 4}, []int64{2, 2}, []int64{1, 1}, 8)
	es := collio.Flatten(sub, 0)
	if len(es) != 2 {
		t.Fatalf("extents = %v", es)
	}
	v := collio.Vector(3, 1, 2, collio.BytesType(4))
	if got := collio.Flatten(v, 100); len(got) != 3 || got[0].Off != 100 {
		t.Fatalf("vector extents = %v", got)
	}
	c := collio.Contiguous(4, collio.BytesType(2))
	if got := collio.Flatten(c, 0); len(got) != 1 || got[0].Len != 8 {
		t.Fatalf("contiguous extents = %v", got)
	}
}

func TestFacadeEnumLists(t *testing.T) {
	if len(collio.Algorithms) != 5 {
		t.Fatalf("paper algorithm count = %d", len(collio.Algorithms))
	}
	if len(collio.Primitives) != 3 {
		t.Fatalf("primitive count = %d", len(collio.Primitives))
	}
	if len(collio.Platforms()) != 2 {
		t.Fatal("expected the paper's two platforms")
	}
}

// TestFacadeSelectHierarchical pins the acceptance contract of the
// two-level family at the facade: swept over a space that offers both
// families, collio.Select returns a hierarchical configuration in a
// cell where pre-combining genuinely wins (crill IOR — the 48-rank
// nodes make the leaders-only size exchange far cheaper than the full
// alltoall), and the winner's time strictly beats every flat point in
// the space (flat precedes hierarchical in canonical order, so a
// hierarchical Best cannot be a tie).
func TestFacadeSelectHierarchical(t *testing.T) {
	space := collio.HierarchicalTuneSpace()
	// Trim the grid for test budget: the three algorithms that bracket
	// the trade (sync-bound, write-overlapped, both-overlapped) at the
	// default buffer size.
	space.Algorithms = []collio.Algorithm{
		collio.NoOverlap, collio.WriteOverlap, collio.WriteCommOverlap,
	}
	space.BufferSizes = []int64{32 << 20}
	sel, err := collio.Select(collio.IOR(), collio.Crill(), 96,
		collio.TuneOptions{Space: space, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !sel.Best.Config.Hierarchical {
		t.Fatalf("expected a hierarchical winner on crill/ior/96, got %+v", sel.Best.Config)
	}
	for _, c := range sel.Candidates {
		if c.Err != nil || c.Config.Hierarchical {
			continue
		}
		if c.Result.Elapsed <= sel.Best.Result.Elapsed {
			t.Fatalf("flat point %v (%v) not strictly beaten by hierarchical best (%v)",
				c.Config.Algorithm, c.Result.Elapsed, sel.Best.Result.Elapsed)
		}
	}
}
